package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cvm/internal/harness"
	"cvm/internal/metrics"
)

// writeReport builds a small report with count scaled by k and mean
// latency around lat, and writes it to dir/name.
func writeReport(t *testing.T, dir, name string, count int, lat int64) string {
	t.Helper()
	reg := metrics.NewRegistry()
	reg.Configure(1, []string{"Lock"})
	for i := 0; i < count; i++ {
		reg.Node(0).Lock2Hop.Observe(lat + int64(i))
		reg.Node(0).UserBurst.Observe(1000)
	}
	rep := metrics.NewReport(metrics.Meta{App: "test"}, reg.Snapshot(), 5)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeBaseline writes a harness perf baseline to dir/name.
func writeBaseline(t *testing.T, dir, name string, identical bool, nsOp float64, allocs int64) string {
	t.Helper()
	b := harness.PerfBaseline{
		Grid: harness.PerfGrid{Cells: 1, Identical: identical},
		Micro: []harness.MicroResult{
			{Name: "MakeDiff/sparse", NsOp: nsOp, AllocsOp: allocs},
		},
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestArgValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"no subcommand", nil, "usage"},
		{"unknown subcommand", []string{"frobnicate"}, "unknown subcommand"},
		{"show no file", []string{"show"}, "usage"},
		{"compare one file", []string{"compare", "a.json"}, "usage"},
		{"compare negative tol", []string{"compare", "-tol", "-1", "a.json", "b.json"}, "-tol"},
		{"compare malformed tol", []string{"compare", "-tol", "lots", "a.json", "b.json"}, "invalid value"},
		{"show missing file", []string{"show", "/nonexistent/x.json"}, "no such file"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q, want it to contain %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestCompareReportsGate(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", 10, 900_000)
	same := writeReport(t, dir, "same.json", 10, 900_000)
	drifted := writeReport(t, dir, "drift.json", 12, 900_000)
	slower := writeReport(t, dir, "slow.json", 10, 2_000_000)

	var out bytes.Buffer
	if err := run([]string{"compare", base, same}, &out); err != nil {
		t.Fatalf("identical reports must pass: %v (%s)", err, out.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Errorf("expected ok summary, got %q", out.String())
	}

	// Count drift is a hard failure (runs are deterministic).
	out.Reset()
	if err := run([]string{"compare", base, drifted}, &out); err == nil {
		t.Fatalf("count drift must fail; output: %s", out.String())
	}
	if !strings.Contains(out.String(), "count") {
		t.Errorf("failure output does not name the count drift: %q", out.String())
	}

	// Latency regression warns by default, fails with -hard-latency.
	out.Reset()
	if err := run([]string{"compare", base, slower}, &out); err != nil {
		t.Fatalf("latency drift should only warn by default: %v (%s)", err, out.String())
	}
	if !strings.Contains(out.String(), "warn") {
		t.Errorf("expected a warning, got %q", out.String())
	}
	out.Reset()
	if err := run([]string{"compare", "-hard-latency", base, slower}, &out); err == nil {
		t.Fatal("-hard-latency must escalate latency regressions to failures")
	}
}

func TestComparePerfBaselineGate(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, "base.json", true, 1000, 2)
	same := writeBaseline(t, dir, "same.json", true, 1040, 2)
	slower := writeBaseline(t, dir, "slow.json", true, 2000, 2)
	leaky := writeBaseline(t, dir, "leaky.json", true, 1000, 3)
	nondet := writeBaseline(t, dir, "nondet.json", false, 1000, 2)

	var out bytes.Buffer
	if err := run([]string{"compare", base, same}, &out); err != nil {
		t.Fatalf("within-noise baseline must pass: %v (%s)", err, out.String())
	}

	// ns/op regressions only warn (host timing is noisy)...
	out.Reset()
	if err := run([]string{"compare", base, slower}, &out); err != nil {
		t.Fatalf("ns/op drift should warn, not fail: %v (%s)", err, out.String())
	}
	if !strings.Contains(out.String(), "ns_op") {
		t.Errorf("warning does not name ns_op: %q", out.String())
	}

	// ...but allocation growth and determinism violations fail hard.
	out.Reset()
	if err := run([]string{"compare", base, leaky}, &out); err == nil {
		t.Fatalf("allocs/op growth must fail; output: %s", out.String())
	}
	out.Reset()
	if err := run([]string{"compare", base, nondet}, &out); err == nil {
		t.Fatalf("results_identical=false must fail; output: %s", out.String())
	}

	// Mixing schemas is an error, not a silent pass.
	rep := writeReport(t, dir, "rep.json", 1, 1000)
	if err := run([]string{"compare", base, rep}, &bytes.Buffer{}); err == nil {
		t.Fatal("comparing a perf baseline against a metrics report must error")
	}
}

// writeWireBaseline writes a perf baseline whose DiffWire section has a
// single sparse-pattern entry at the given ratio.
func writeWireBaseline(t *testing.T, dir, name string, ratio float64) string {
	t.Helper()
	b := harness.PerfBaseline{
		Grid:  harness.PerfGrid{Cells: 1, Identical: true},
		Micro: []harness.MicroResult{{Name: "MakeDiff/sparse", NsOp: 1000, AllocsOp: 2}},
		DiffWire: []harness.DiffWireResult{{
			Pattern: "sparse", RawBytes: 1000,
			EncodedBytes: int(ratio * 1000), Ratio: ratio,
		}},
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWireRatioGate(t *testing.T) {
	dir := t.TempDir()
	base := writeWireBaseline(t, dir, "base.json", 0.50)
	good := writeWireBaseline(t, dir, "good.json", 0.55)
	bad := writeWireBaseline(t, dir, "bad.json", 0.75)

	var out bytes.Buffer
	if err := run([]string{"compare", base, good}, &out); err != nil {
		t.Fatalf("ratio under the cap must pass: %v (%s)", err, out.String())
	}

	// The sparse cap is absolute: 0.75 fails even though the baseline
	// would allow drift.
	out.Reset()
	if err := run([]string{"compare", bad, bad}, &out); err == nil {
		t.Fatalf("sparse ratio 0.75 must fail the hard cap; output: %s", out.String())
	}
	if !strings.Contains(out.String(), "diff_wire/sparse/ratio") {
		t.Errorf("failure output does not name the ratio cap: %q", out.String())
	}

	// Dropping a wire pattern the baseline had is a failure.
	plain := writeBaseline(t, dir, "plain.json", true, 1000, 2)
	out.Reset()
	if err := run([]string{"compare", base, plain}, &out); err == nil {
		t.Fatalf("missing wire pattern must fail; output: %s", out.String())
	}
}

func TestShowRendersReport(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "rep.json", 5, 900_000)
	var out bytes.Buffer
	if err := run([]string{"show", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "latency histograms") ||
		!strings.Contains(out.String(), "lock_2hop") {
		t.Errorf("show output missing histogram table: %q", out.String())
	}
}

// writeBackendReport builds a minimal report with the given sync
// counters; real selects whether it carries a Real section (i.e. which
// backend it claims to come from).
func writeBackendReport(t *testing.T, dir, name string, lockAcquires, barriers int64, real bool) string {
	t.Helper()
	snap := &metrics.Snapshot{Nodes: make([]metrics.NodeMetrics, 2), MsgClasses: []string{"Lock"}}
	snap.LockAcquires.Add(lockAcquires)
	snap.LockReleases.Add(lockAcquires)
	snap.BarrierArrivals.Add(barriers)
	snap.Nodes[0].FaultService.Observe(5000)
	rep := metrics.NewReport(metrics.Meta{App: "sor", Config: "2x1 size=test"}, snap, 5)
	if real {
		rep.Real = &metrics.RealStats{Backend: "loopback", Nodes: 2, ElapsedNs: 1e6}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffBackendsGate(t *testing.T) {
	dir := t.TempDir()
	sim := writeBackendReport(t, dir, "sim.json", 10, 4, false)
	same := writeBackendReport(t, dir, "same.json", 10, 4, true)
	drifted := writeBackendReport(t, dir, "drifted.json", 11, 4, true)

	var out bytes.Buffer
	if err := run([]string{"diff-backends", sim, same}, &out); err != nil {
		t.Errorf("matching reports failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "backend-invariant counters match exactly") {
		t.Errorf("missing verdict line:\n%s", out.String())
	}

	out.Reset()
	err := run([]string{"diff-backends", sim, drifted}, &out)
	if err == nil {
		t.Fatalf("drifted counters passed the gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "lock_acquires") {
		t.Errorf("gate error %q does not name the drifted counter", err)
	}
	if !strings.Contains(out.String(), "MISMATCH") {
		t.Errorf("table does not flag the mismatch:\n%s", out.String())
	}
}

func TestDiffBackendsRejectsSwappedArguments(t *testing.T) {
	dir := t.TempDir()
	sim := writeBackendReport(t, dir, "sim.json", 10, 4, false)
	real := writeBackendReport(t, dir, "real.json", 10, 4, true)
	var out bytes.Buffer
	if err := run([]string{"diff-backends", real, sim}, &out); err == nil ||
		!strings.Contains(err.Error(), "simulator report") {
		t.Errorf("swapped arguments = %v, want backend-identity error", err)
	}
}

// TestDiffBackendsSuppressesStructurallyZero pins the suppression list
// for the informational time-metrics table: metrics the real runtime
// cannot record by construction (lock_3hop — centralized managers
// answer every remote grant in two hops) are dropped when empty on the
// real side, and printed when, against expectation, they are not.
func TestDiffBackendsSuppressesStructurallyZero(t *testing.T) {
	want := map[string]bool{"lock_3hop": true}
	if len(structurallyZeroReal) != len(want) {
		t.Errorf("suppression list = %v, want %v — update this pin alongside the list", structurallyZeroReal, want)
	}
	for name := range want {
		if !structurallyZeroReal[name] {
			t.Errorf("suppression list %v is missing %q", structurallyZeroReal, name)
		}
	}

	dir := t.TempDir()
	sim := writeBackendReport(t, dir, "sim.json", 10, 4, false)
	real := writeBackendReport(t, dir, "real.json", 10, 4, true)

	// The sim-side fixture observed a 3-hop grant; the real side cannot.
	simRep, err := readReportFile(sim)
	if err != nil {
		t.Fatal(err)
	}
	simRep.Snapshot.Nodes[0].Lock3Hop.Observe(7000)
	var buf bytes.Buffer
	if err := simRep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(sim, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"diff-backends", sim, real}, &out); err != nil {
		t.Fatalf("gate failed: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "lock_3hop") {
		t.Errorf("structurally-zero lock_3hop printed in the info table:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "fault_service") {
		t.Errorf("genuinely observed metric missing from the info table:\n%s", out.String())
	}

	// A real backend that somehow records a 3-hop grant is news: print it.
	realRep, err := readReportFile(real)
	if err != nil {
		t.Fatal(err)
	}
	realRep.Snapshot.Nodes[0].Lock3Hop.Observe(9000)
	buf.Reset()
	if err := realRep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(real, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"diff-backends", sim, real}, &out); err != nil {
		t.Fatalf("gate failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "lock_3hop") {
		t.Errorf("unexpected real-side lock_3hop suppressed:\n%s", out.String())
	}
}
