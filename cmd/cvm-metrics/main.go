// Command cvm-metrics inspects and compares the JSON artifacts the other
// tools emit: metrics reports (cvm-run -metrics, cvm-bench -metrics) and
// harness perf baselines (cvm-bench -experiment perf -json).
//
// Usage:
//
//	cvm-metrics show profile.json
//	cvm-metrics compare baseline.json current.json
//	cvm-metrics compare -tol 0.10 -hard-latency BASELINE_metrics.json profile.json
//	cvm-metrics compare BENCH_baseline.json BENCH_harness.json
//	cvm-metrics diff-backends sim.json loopback.json
//	cvm-metrics scrape 127.0.0.1:8100
//
// diff-backends gates the sim-vs-real counter equivalence: the
// backend-invariant sync counters must match exactly between a
// simulator report and a real-backend report of the same run, while
// time-typed metrics (virtual vs wall nanoseconds) print side by side.
// scrape probes a live cvm-node debug server (-debug-addr) without
// needing curl: /healthz must answer and /metrics must be non-trivial.
//
// compare sniffs the schema: files with a "micro" key are harness perf
// baselines (ns/op drifts warn, allocs/op increases and determinism
// violations fail); files with a "snapshot" key are metrics reports
// (count drift in either direction fails — virtual-time runs are
// deterministic, so event counts must match exactly — and mean-latency
// increases beyond -tol warn, or fail with -hard-latency). The exit
// status is nonzero iff any finding fails, so the command gates
// `make check` and CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cvm/internal/harness"
	"cvm/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cvm-metrics:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: cvm-metrics <show|compare> [flags] <file>...")
	}
	switch args[0] {
	case "show":
		return runShow(args[1:], out)
	case "compare":
		return runCompare(args[1:], out)
	case "diff-backends":
		return runDiffBackends(args[1:], out)
	case "scrape":
		return runScrape(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want show, compare, diff-backends or scrape)", args[0])
	}
}

// runShow prints the human-readable profile of a JSON metrics report.
func runShow(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvm-metrics show", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cvm-metrics show <report.json>")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rep, err := metrics.ReadReport(data)
	if err != nil {
		return fmt.Errorf("%s: %v", fs.Arg(0), err)
	}
	return rep.WriteText(out)
}

// runCompare diffs two JSON artifacts of the same schema and exits
// nonzero when the current file regresses past tolerance.
func runCompare(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvm-metrics compare", flag.ContinueOnError)
	var (
		tol         = fs.Float64("tol", metrics.DefaultCompareOpts.LatencyTol, "relative latency tolerance (0.25 = +25% mean before a finding)")
		hardLatency = fs.Bool("hard-latency", false, "fail (not just warn) on latency regressions beyond -tol")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: cvm-metrics compare [flags] <baseline.json> <current.json>")
	}
	if *tol < 0 {
		return fmt.Errorf("-tol must be >= 0, got %v", *tol)
	}
	basePath, curPath := fs.Arg(0), fs.Arg(1)
	base, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	cur, err := os.ReadFile(curPath)
	if err != nil {
		return err
	}

	var findings []metrics.Finding
	switch {
	case isPerfBaseline(base):
		if !isPerfBaseline(cur) {
			return fmt.Errorf("%s is a perf baseline but %s is not", basePath, curPath)
		}
		findings, err = comparePerf(base, cur, *tol)
	default:
		baseRep, rerr := metrics.ReadReport(base)
		if rerr != nil {
			return fmt.Errorf("%s: %v", basePath, rerr)
		}
		curRep, rerr := metrics.ReadReport(cur)
		if rerr != nil {
			return fmt.Errorf("%s: %v", curPath, rerr)
		}
		opts := metrics.DefaultCompareOpts
		opts.LatencyTol = *tol
		opts.HardLatency = *hardLatency
		findings = metrics.CompareReports(baseRep, curRep, opts)
	}
	if err != nil {
		return err
	}

	fails := 0
	for _, f := range findings {
		if f.Level == metrics.LevelFail {
			fails++
		}
		fmt.Fprintf(out, "%s %s: %s\n", f.Level, f.Path, f.Msg)
	}
	if fails > 0 {
		return fmt.Errorf("%d regression(s) beyond tolerance (%d finding(s) total)", fails, len(findings))
	}
	fmt.Fprintf(out, "ok: %s within tolerance of %s (%d warning(s))\n", curPath, basePath, len(findings))
	return nil
}

// isPerfBaseline sniffs the harness perf schema by its "micro" key.
func isPerfBaseline(data []byte) bool {
	return strings.Contains(string(data), `"micro"`)
}

// allocCaps are absolute allocs/op ceilings for the hot span access
// paths, enforced independently of the baseline so a regressed baseline
// can never launder an allocation-diet regression through the relative
// gate.
var allocCaps = map[string]int64{
	"ReadRange/span":  24,
	"WriteRange/span": 38,
	// Diff wire codec: the encoder amortizes to a handful of buffer
	// growths; the decoder allocates one Run slice plus payloads.
	"DiffEncode/sparse": 4,
	"DiffEncode/dense":  4,
	"DiffDecode/sparse": 32,
}

// wireRatioCaps are absolute encoded/raw ceilings per diff wire pattern,
// enforced on the current baseline regardless of the committed one: the
// compression win is an acceptance property, not a relative drift.
var wireRatioCaps = map[string]float64{
	"sparse":  0.60,
	"dense":   1.02,
	"strided": 0.90,
}

// comparePerf diffs two harness perf baselines. Host wall-clock numbers
// are noisy, so ns/op drifts only warn; allocation counts and the
// determinism bits are exact properties of the code and fail hard.
func comparePerf(base, cur []byte, tol float64) ([]metrics.Finding, error) {
	b, err := harness.ReadPerfBaseline(base)
	if err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	c, err := harness.ReadPerfBaseline(cur)
	if err != nil {
		return nil, fmt.Errorf("current: %v", err)
	}

	var findings []metrics.Finding
	if !c.Grid.Identical {
		findings = append(findings, metrics.Finding{
			Level: metrics.LevelFail, Path: "grid/results_identical",
			Msg: "parallel grid results differ from sequential (determinism violation)",
		})
	}
	if c.Engine.Workers > 0 && !c.Engine.Identical {
		findings = append(findings, metrics.Finding{
			Level: metrics.LevelFail, Path: "engine/results_identical",
			Msg: "windowed engine results differ across worker counts (determinism violation)",
		})
	}
	baseMicro := make(map[string]harness.MicroResult, len(b.Micro))
	for _, m := range b.Micro {
		baseMicro[m.Name] = m
	}
	for _, m := range c.Micro {
		bm, ok := baseMicro[m.Name]
		if !ok {
			// New benchmarks have no baseline yet; nothing to gate.
			continue
		}
		if m.AllocsOp > bm.AllocsOp {
			findings = append(findings, metrics.Finding{
				Level: metrics.LevelFail, Path: "micro/" + m.Name + "/allocs_op",
				Base: bm.AllocsOp, Cur: m.AllocsOp,
				Msg: fmt.Sprintf("allocs/op grew %d -> %d", bm.AllocsOp, m.AllocsOp),
			})
		}
		if cap, ok := allocCaps[m.Name]; ok && m.AllocsOp > cap {
			findings = append(findings, metrics.Finding{
				Level: metrics.LevelFail, Path: "micro/" + m.Name + "/allocs_cap",
				Base: cap, Cur: m.AllocsOp,
				Msg: fmt.Sprintf("allocs/op %d exceeds hard cap %d", m.AllocsOp, cap),
			})
		}
		if bm.NsOp > 0 && m.NsOp > bm.NsOp*(1+tol) {
			findings = append(findings, metrics.Finding{
				Level: metrics.LevelWarn, Path: "micro/" + m.Name + "/ns_op",
				Base: int64(bm.NsOp), Cur: int64(m.NsOp),
				Msg: fmt.Sprintf("ns/op %.1f -> %.1f (+%.0f%%, tol %.0f%%)",
					bm.NsOp, m.NsOp, 100*(m.NsOp/bm.NsOp-1), 100*tol),
			})
		}
	}
	for _, m := range b.Micro {
		found := false
		for _, cm := range c.Micro {
			if cm.Name == m.Name {
				found = true
				break
			}
		}
		if !found {
			findings = append(findings, metrics.Finding{
				Level: metrics.LevelFail, Path: "micro/" + m.Name,
				Msg: "benchmark missing from current baseline",
			})
		}
	}
	for _, dw := range c.DiffWire {
		if cap, ok := wireRatioCaps[dw.Pattern]; ok && dw.Ratio > cap {
			findings = append(findings, metrics.Finding{
				Level: metrics.LevelFail, Path: "diff_wire/" + dw.Pattern + "/ratio",
				Msg: fmt.Sprintf("encoded/raw ratio %.3f exceeds hard cap %.2f (%d/%d bytes)",
					dw.Ratio, cap, dw.EncodedBytes, dw.RawBytes),
			})
		}
	}
	for _, dw := range b.DiffWire {
		found := false
		for _, cw := range c.DiffWire {
			if cw.Pattern == dw.Pattern {
				found = true
				break
			}
		}
		if !found {
			findings = append(findings, metrics.Finding{
				Level: metrics.LevelFail, Path: "diff_wire/" + dw.Pattern,
				Msg: "wire pattern missing from current baseline",
			})
		}
	}
	return findings, nil
}
