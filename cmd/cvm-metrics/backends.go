package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"cvm/internal/metrics"
)

// runDiffBackends compares a simulator metrics report against a
// real-backend one for the same app and configuration. The
// backend-invariant sync counters (lock acquires/releases, barrier and
// local-barrier arrivals, reductions) are program-determined — one per
// application call — so they must match exactly; any drift fails the
// command. Everything else differs by construction (the simulator's
// lazy protocol vs the runtime's eager full-invalidate one, virtual
// time vs wall time) and is reported side by side, ungated.
func runDiffBackends(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvm-metrics diff-backends", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: cvm-metrics diff-backends <sim-report.json> <real-report.json>")
	}
	simPath, realPath := fs.Arg(0), fs.Arg(1)
	sim, err := readReportFile(simPath)
	if err != nil {
		return err
	}
	real, err := readReportFile(realPath)
	if err != nil {
		return err
	}
	// The Real section is how a report declares its backend: the
	// simulator never writes one, every wall-clock backend does.
	if sim.Real != nil {
		return fmt.Errorf("%s is a real-backend report (%s); the first argument must be a simulator report", simPath, sim.Real.Backend)
	}
	if real.Real == nil {
		return fmt.Errorf("%s is a simulator report; the second argument must be a real-backend report", realPath)
	}
	if sim.Meta != real.Meta {
		fmt.Fprintf(out, "note: comparing different runs: sim %q %q vs real %q %q\n",
			sim.Meta.App, sim.Meta.Config, real.Meta.App, real.Meta.Config)
	}
	fmt.Fprintf(out, "sim %s (%s) vs %s %s (%s)\n\n",
		sim.Meta.App, sim.Meta.Config, real.Real.Backend, real.Meta.App, real.Meta.Config)

	simCounts := counterMap(sim.Snapshot)
	realCounts := counterMap(real.Snapshot)
	invariant := make(map[string]bool)
	for _, name := range metrics.BackendInvariantCounters() {
		invariant[name] = true
	}

	var mismatches []string
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "counter\tsim\treal\tgate\n")
	names := make([]string, 0, len(simCounts))
	for name := range simCounts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s, r := simCounts[name], realCounts[name]
		if !invariant[name] {
			if s != 0 || r != 0 {
				fmt.Fprintf(tw, "%s\t%d\t%d\tinfo\n", name, s, r)
			}
			continue
		}
		verdict := "ok"
		if s != r {
			verdict = "MISMATCH"
			mismatches = append(mismatches,
				fmt.Sprintf("%s: sim %d, real %d", name, s, r))
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\n", name, s, r, verdict)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Time-typed metrics: virtual vs wall nanoseconds, side by side.
	fmt.Fprintf(out, "\ntime metrics (sim = virtual, real = wall; informational)\n")
	simHist := histTotals(sim.Snapshot)
	realHist := histTotals(real.Snapshot)
	tw = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "metric\tsim count\tsim mean\treal count\treal mean\n")
	hnames := make([]string, 0, len(simHist))
	for name := range simHist {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		s, r := simHist[name], realHist[name]
		if s.Count == 0 && r.Count == 0 {
			continue
		}
		if structurallyZeroReal[name] && r.Count == 0 {
			// The real backend cannot produce this metric by
			// construction; an empty real column next to a populated sim
			// one reads as drift where there is none. (A nonzero count
			// still prints — that genuinely is news.)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n",
			name, s.Count, meanStr(name, s), r.Count, meanStr(name, r))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if len(mismatches) > 0 {
		return fmt.Errorf("backend-invariant counters diverge:\n  %s",
			strings.Join(mismatches, "\n  "))
	}
	fmt.Fprintf(out, "\nok: all %d backend-invariant counters match exactly\n", len(invariant))
	return nil
}

func readReportFile(path string) (*metrics.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := metrics.ReadReport(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

func counterMap(s *metrics.Snapshot) map[string]int64 {
	out := make(map[string]int64)
	s.EachCounter(func(name string, c *metrics.Counter) {
		out[name] = int64(*c)
	})
	return out
}

// histTotals folds every histogram across scopes into per-name totals.
func histTotals(s *metrics.Snapshot) map[string]metrics.Histogram {
	out := make(map[string]metrics.Histogram)
	s.EachHistogram(func(_, name string, h *metrics.Histogram) {
		t := out[name]
		t.Count += h.Count
		t.Sum += h.Sum
		out[name] = t
	})
	return out
}

// unitless histograms observe bytes or queue depths, not nanoseconds.
var unitless = map[string]bool{"diff_bytes": true, "run_queue": true}

// structurallyZeroReal lists time metrics the real runtime cannot
// record by construction, suppressed from the informational table when
// (as expected) empty on the real side. lock_3hop: the runtime's lock
// managers are centralized, so every remote grant is a 2-hop exchange —
// the 3-hop path exists only in the simulator's distributed-queue
// protocol. Pinned by TestDiffBackendsSuppressesStructurallyZero.
var structurallyZeroReal = map[string]bool{"lock_3hop": true}

func meanStr(name string, h metrics.Histogram) string {
	if h.Count == 0 {
		return "-"
	}
	mean := h.Sum / h.Count
	if unitless[name] {
		return fmt.Sprintf("%d", mean)
	}
	return (time.Duration(mean) * time.Nanosecond).Round(100 * time.Nanosecond).String()
}

// runScrape probes one cvm-node debug server: /healthz must answer ok
// and /metrics must serve a report whose counters are not all zero (a
// node that joined but never observed anything is a wiring bug, not a
// healthy node). It exists so shell-level smoke tests don't need curl.
func runScrape(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvm-metrics scrape", flag.ContinueOnError)
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout")
	allowZero := fs.Bool("allow-zero", false, "accept a report with all-zero counters (node may be mid-handshake)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cvm-metrics scrape [flags] <host:port or http://host:port>")
	}
	base := fs.Arg(0)
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: *timeout}

	body, err := get(client, base+"/healthz")
	if err != nil {
		return err
	}
	if strings.TrimSpace(string(body)) != "ok" {
		return fmt.Errorf("%s/healthz answered %q, want ok", base, strings.TrimSpace(string(body)))
	}

	body, err = get(client, base+"/metrics")
	if err != nil {
		return err
	}
	rep, err := metrics.ReadReport(body)
	if err != nil {
		return fmt.Errorf("%s/metrics: %v", base, err)
	}
	var events int64
	rep.Snapshot.EachCounter(func(_ string, c *metrics.Counter) { events += int64(*c) })
	rep.Snapshot.EachHistogram(func(_, _ string, h *metrics.Histogram) { events += h.Count })
	if events == 0 && !*allowZero {
		return fmt.Errorf("%s/metrics: all counters zero — the node is up but observed nothing", base)
	}
	fmt.Fprintf(out, "ok: %s healthy, %d observations (%s %s)\n",
		base, events, rep.Meta.App, rep.Meta.Config)
	return nil
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}
