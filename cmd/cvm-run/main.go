// Command cvm-run executes one application of the paper's suite on a
// simulated CVM cluster and prints its statistics.
//
// Usage:
//
//	cvm-run -app sor -nodes 8 -threads 2 -size small
//	cvm-run -app sor -nodes 8 -threads 1,2,4 -parallel 3
//	cvm-run -app waternsq -nodes 4 -threads 2 -size test -report -metrics profile.json
//
// Applications: barnes, fft, ocean, sor, swm750, watersp, waternsq,
// waternsq-noopts, waternsq-localbarrier. Sizes: test, small, paper.
//
// -threads accepts a comma-separated list; the resulting configurations
// are independent simulations and run concurrently across -parallel
// worker goroutines (0 = all CPUs). Instrumented runs (-trace, -metrics,
// -metrics-csv, -report, -check) need a single -threads level; tracing,
// metrics and the invariant checker can be combined in one run.
//
// -faults injects deterministic network and node faults, e.g.
//
//	cvm-run -app sor -size test -faults 'drop=0.01,dup=0.001' -fault-seed 7
//
// The run must still verify against the sequential reference; the
// report gains a transport section (retransmits, suppressed duplicates).
// -check attaches the protocol invariant checker and fails the run on
// any violation.
//
// -transport selects the execution backend: "sim" (default) is the
// deterministic virtual-time simulator; "loopback" runs the same
// application on the real runtime (internal/rt) over an in-process
// channel transport in wall time. The loopback backend produces the
// same checksum as the simulator, and it supports -trace, -metrics,
// -metrics-csv and -report with wall-clock timestamps in place of
// virtual time (compare the two with cvm-metrics diff-backends). It
// has no virtual-time machinery beyond that: fault injection, -check,
// -metrics-interval, -engine-workers and thread sweeps stay
// simulator-only. For multi-process clusters over TCP, see cvm-node.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/check"
	"cvm/internal/harness"
	"cvm/internal/metrics"
	"cvm/internal/netsim"
	"cvm/internal/rt"
	"cvm/internal/trace"
	"cvm/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cvm-run:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvm-run", flag.ContinueOnError)
	var (
		appName    = fs.String("app", "sor", "application: "+strings.Join(apps.Names(), ", "))
		nodes      = fs.Int("nodes", 8, "number of nodes (processors)")
		threads    = fs.String("threads", "1", "application threads per node (comma-separated list sweeps)")
		size       = fs.String("size", "small", "input scale: test, small, paper")
		parallel   = fs.Int("parallel", 0, "worker goroutines for a threads sweep (0 = all CPUs, 1 = sequential)")
		traceOut   = fs.String("trace", "", "record protocol events and write Chrome trace JSON to this file")
		traceLimit = fs.Int("trace-limit", 0, "per-node trace event ring bound (0 = unbounded)")

		metricsOut  = fs.String("metrics", "", "collect virtual-time metrics and write the JSON report to this file")
		metricsCSV  = fs.String("metrics-csv", "", "write the metrics report as CSV to this file")
		showReport  = fs.Bool("report", false, "print the human-readable metrics profile (histograms, hot pages/locks, timeline)")
		metricsBin  = fs.Duration("metrics-interval", 0, "utilization-timeline bin width in virtual time (0 = default 10ms)")
		metricsTopN = fs.Int("metrics-top", 10, "rows kept in the hot-page and hot-lock tables")

		engineWorkers = fs.Int("engine-workers", 0, "conservative parallel engine worker count (0 = sequential engine)")
		compressDiffs = fs.Bool("compress-diffs", false, "account diff messages at their compressed wire size (simulator only; the real transport always compresses)")
		adapt         = fs.Bool("adapt", false, "enable per-page adaptive coherence (invalidate/update and single-/multi-writer mode switching)")
		migrate       = fs.Bool("migrate", false, "enable affinity-driven thread migration (apps must be migration-safe; see -app docs)")

		faults    = fs.String("faults", "", "deterministic fault spec, e.g. 'drop=0.01,dup=0.001,reorder=0.005,jitter=100us,pause=1:5ms:2ms'")
		faultSeed = fs.Uint64("fault-seed", 1, "fault-schedule seed (same spec + seed = same schedule, byte for byte)")
		checkRun  = fs.Bool("check", false, "attach the protocol invariant checker; any violation fails the run")

		backend = fs.String("transport", "sim", "execution backend: sim (deterministic simulator) or loopback (real runtime, in-process)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *traceLimit < 0 {
		return fmt.Errorf("-trace-limit must be >= 0, got %d", *traceLimit)
	}
	if *metricsBin < 0 {
		return fmt.Errorf("-metrics-interval must be >= 0, got %v", *metricsBin)
	}
	if *metricsTopN < 1 {
		return fmt.Errorf("-metrics-top must be >= 1, got %d", *metricsTopN)
	}
	if *engineWorkers < 0 {
		return fmt.Errorf("-engine-workers must be >= 0, got %d", *engineWorkers)
	}
	var fp *cvm.FaultPlan
	if *faults != "" {
		var err error
		if fp, err = cvm.ParseFaults(*faults, *faultSeed); err != nil {
			return err
		}
	} else {
		seedSet := false
		fs.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "fault-seed" })
		if seedSet {
			return fmt.Errorf("-fault-seed needs -faults")
		}
	}

	sz, err := apps.ParseSize(*size)
	if err != nil {
		return err
	}
	levels, err := parseThreadList(*threads)
	if err != nil {
		return err
	}

	wantMetrics := *metricsOut != "" || *metricsCSV != "" || *showReport
	switch *backend {
	case "sim":
	case "loopback":
		// The real runtime meters and traces in wall time, but it has no
		// simulated faults to inject, no DES engine to parallelize, no
		// virtual-time invariant checker, and no utilization timeline.
		// Reject those combinations rather than ignore them.
		if *checkRun {
			return fmt.Errorf("-check is the simulator's virtual-time invariant checker; drop it with -transport loopback")
		}
		if *metricsBin > 0 {
			return fmt.Errorf("-metrics-interval shapes the simulator's virtual-time timeline; drop it with -transport loopback")
		}
		if fp != nil {
			return fmt.Errorf("-transport loopback cannot inject simulated faults; drop -faults")
		}
		if *engineWorkers > 0 {
			return fmt.Errorf("-engine-workers tunes the simulator's DES engine; drop it with -transport loopback")
		}
		if *compressDiffs {
			return fmt.Errorf("-compress-diffs tunes the simulator's byte accounting; the real transport always compresses, drop it with -transport loopback")
		}
		if *adapt {
			return fmt.Errorf("-adapt tunes the simulator's coherence protocol; drop it with -transport loopback")
		}
		if *migrate {
			return fmt.Errorf("-migrate moves threads inside the simulator's scheduler; drop it with -transport loopback")
		}
		if len(levels) != 1 {
			return fmt.Errorf("-transport loopback needs a single -threads level, got %q", *threads)
		}
		return runLoopback(out, loopbackOpts{
			app: *appName, size: sz, sizeName: *size,
			nodes: *nodes, threads: levels[0],
			traceOut: *traceOut, traceLimit: *traceLimit,
			metricsOut: *metricsOut, metricsCSV: *metricsCSV,
			report: *showReport, wantMetrics: wantMetrics, topN: *metricsTopN,
		})
	default:
		return fmt.Errorf("-transport must be sim or loopback, got %q", *backend)
	}

	if *traceOut != "" || wantMetrics || *checkRun {
		if len(levels) != 1 {
			return fmt.Errorf("-trace/-metrics/-report/-check need a single -threads level, got %q", *threads)
		}
		return runInstrumented(out, instrumentOpts{
			app: *appName, size: sz, sizeName: *size,
			nodes: *nodes, threads: levels[0],
			traceOut: *traceOut, traceLimit: *traceLimit,
			metricsOut: *metricsOut, metricsCSV: *metricsCSV,
			report: *showReport, wantMetrics: wantMetrics,
			interval: cvm.Time((*metricsBin).Nanoseconds()), topN: *metricsTopN,
			faults: fp, check: *checkRun, engineWorkers: *engineWorkers,
			compressDiffs: *compressDiffs, adapt: *adapt, migrate: *migrate,
		})
	}

	// The sweep's cells are independent simulations; fan them out over
	// the harness worker pool and print each report in thread order.
	// Faults, when requested, apply the one shared read-only plan to
	// every cell; each cell's schedule is keyed on its own simulation
	// state, so the sweep stays deterministic at any -parallel level.
	shapes := harness.GridShapes([]int{*nodes}, levels)
	var mut func(harness.Key, *cvm.Config)
	if fp != nil || *engineWorkers > 0 || *compressDiffs || *adapt || *migrate {
		ew, comp, ad, mig := *engineWorkers, *compressDiffs, *adapt, *migrate
		mut = func(_ harness.Key, cfg *cvm.Config) {
			cfg.Faults = fp
			cfg.EngineWorkers = ew
			cfg.CompressDiffs = comp
			cfg.Adapt = ad
			cfg.Migrate = mig
		}
	}
	res, err := harness.RunGridConfig([]string{*appName}, sz, shapes, mut, nil, *parallel)
	if err != nil {
		return err
	}
	for i, t := range levels {
		st, ok := res[harness.Key{App: *appName, Nodes: *nodes, Threads: t}]
		if !ok {
			fmt.Fprintf(out, "%s does not support %d threads per node; skipped\n", *appName, t)
			continue
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := report(out, *appName, *nodes, t, *size, st); err != nil {
			return err
		}
		if fp != nil {
			if err := reportTransport(out, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// instrumentOpts parameterizes one instrumented (traced and/or metered)
// run.
type instrumentOpts struct {
	app      string
	size     apps.Size
	sizeName string
	nodes    int
	threads  int

	traceOut   string
	traceLimit int

	metricsOut  string
	metricsCSV  string
	report      bool
	wantMetrics bool
	interval    cvm.Time
	topN        int

	faults        *cvm.FaultPlan
	check         bool
	engineWorkers int
	compressDiffs bool
	adapt         bool
	migrate       bool
}

// runInstrumented executes one simulation with tracing and/or metrics
// attached, prints the statistics, and writes the requested artifacts.
// Both instruments observe without advancing virtual time, so they
// compose without perturbing each other or the run.
func runInstrumented(out io.Writer, o instrumentOpts) error {
	cfg := cvm.DefaultConfig(o.nodes, o.threads)
	cfg.Faults = o.faults
	cfg.EngineWorkers = o.engineWorkers
	cfg.CompressDiffs = o.compressDiffs
	cfg.Adapt = o.adapt
	cfg.Migrate = o.migrate
	var rec *trace.Recorder
	if o.traceOut != "" {
		rec = trace.NewRecorder(o.nodes, o.threads, o.traceLimit)
		cfg.Tracer = rec
	}
	var chk *check.Checker
	if o.check {
		chk = check.New(o.nodes, o.threads)
		if rec != nil {
			cfg.Tracer = trace.Tee(rec, chk)
		} else {
			cfg.Tracer = chk
		}
	}
	var reg *cvm.Metrics
	if o.wantMetrics {
		reg = cvm.NewMetrics()
		if o.interval > 0 {
			reg.SetInterval(o.interval)
		}
		cfg.Metrics = reg
	}

	st, err := apps.RunConfig(o.app, o.size, cfg)
	if err != nil {
		return err
	}
	if err := report(out, o.app, o.nodes, o.threads, o.sizeName, st); err != nil {
		return err
	}
	if o.faults != nil {
		if err := reportTransport(out, st); err != nil {
			return err
		}
	}
	if chk != nil {
		chk.Finish()
		if n := chk.Count(); n != 0 {
			var b strings.Builder
			chk.Report(&b)
			fmt.Fprint(out, b.String())
			return fmt.Errorf("invariant checker found %d violation(s)", n)
		}
		fmt.Fprintln(out, "\ninvariant checker: no violations")
	}

	if rec != nil {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %d trace events to %s (load at ui.perfetto.dev)\n", rec.Len(), o.traceOut)
	}

	if reg == nil {
		return nil
	}
	rep := cvm.NewMetricsReport(o.app,
		fmt.Sprintf("%dx%d size=%s", o.nodes, o.threads, o.sizeName),
		reg.Snapshot(), o.topN)
	if o.report {
		fmt.Fprintln(out)
		if err := rep.WriteText(out); err != nil {
			return err
		}
	}
	if o.metricsOut != "" {
		if err := writeFileWith(o.metricsOut, rep.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote metrics report to %s\n", o.metricsOut)
	}
	if o.metricsCSV != "" {
		if err := writeFileWith(o.metricsCSV, rep.WriteCSV); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics CSV to %s\n", o.metricsCSV)
	}
	return nil
}

// loopbackOpts parameterizes one real-runtime loopback run.
type loopbackOpts struct {
	app      string
	size     apps.Size
	sizeName string
	nodes    int
	threads  int

	traceOut   string
	traceLimit int

	metricsOut  string
	metricsCSV  string
	report      bool
	wantMetrics bool
	topN        int
}

// runLoopback executes one run on the real runtime over the in-process
// loopback transport and prints the wall-time report. The checksum
// still verifies against the sequential reference, and — by the
// transport-equivalence guarantee (DESIGN.md §11) — equals the
// simulator's bit for bit at the same configuration. With -metrics or
// -report the run collects the wall-clock protocol metrics into the
// simulator's report shape (plus a "real transport" section), so the
// two backends' profiles are directly comparable — see
// cvm-metrics diff-backends.
func runLoopback(out io.Writer, o loopbackOpts) error {
	app, err := apps.New(o.app, o.size)
	if err != nil {
		return err
	}
	if !app.SupportsThreads(o.threads) {
		return fmt.Errorf("%s does not support %d threads per node", o.app, o.threads)
	}
	cfg := rt.DefaultConfig(o.nodes, o.threads)
	var met *rt.Metrics
	if o.wantMetrics {
		met = rt.NewMetrics()
		cfg.Metrics = met
	}
	var rec *trace.Recorder
	if o.traceOut != "" {
		rec = trace.NewRecorder(o.nodes, o.threads, o.traceLimit)
		cfg.Tracer = rec
	}
	cl, err := rt.NewCluster(cfg)
	if err != nil {
		return err
	}
	if err := app.Setup(cl); err != nil {
		return err
	}
	res, err := cl.RunLoopback(app.Main)
	if err != nil {
		return err
	}
	if err := app.Check(); err != nil {
		return err
	}
	fmt.Fprintf(out, "%s on %d nodes x %d threads (%s input) over loopback: result verified against sequential reference\n\n",
		o.app, o.nodes, o.threads, o.sizeName)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "wall time\t%v\n", res.Elapsed)
	fmt.Fprintf(tw, "checksum\t%v\n", app.Checksum())
	fmt.Fprintf(tw, "messages (barrier/lock/diff)\t%d / %d / %d\n",
		res.Net.Msgs[transport.ClassBarrier], res.Net.Msgs[transport.ClassLock],
		res.Net.Msgs[transport.ClassDiff])
	fmt.Fprintf(tw, "total messages\t%d\n", res.Net.TotalMsgs())
	fmt.Fprintf(tw, "bandwidth\t%d KB\n", res.Net.TotalBytes()/1024)
	if err := tw.Flush(); err != nil {
		return err
	}

	if rec != nil {
		if err := writeFileWith(o.traceOut, func(w io.Writer) error {
			return trace.WriteChrome(w, rec)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %d trace events to %s (load at ui.perfetto.dev)\n", rec.Len(), o.traceOut)
	}

	if met == nil {
		return nil
	}
	rep := metrics.NewReport(metrics.Meta{
		App:    o.app,
		Config: fmt.Sprintf("%dx%d size=%s", o.nodes, o.threads, o.sizeName),
	}, met.Snapshot(), o.topN)
	rep.Real = rt.RealStats("loopback", o.nodes, res.Elapsed, res.Net)
	if o.report {
		fmt.Fprintln(out)
		if err := rep.WriteText(out); err != nil {
			return err
		}
	}
	if o.metricsOut != "" {
		if err := writeFileWith(o.metricsOut, rep.WriteJSON); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote metrics report to %s\n", o.metricsOut)
	}
	if o.metricsCSV != "" {
		if err := writeFileWith(o.metricsCSV, rep.WriteCSV); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics CSV to %s\n", o.metricsCSV)
	}
	return nil
}

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseThreadList parses "1,2,4" into thread levels.
func parseThreadList(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			return nil, fmt.Errorf("bad -threads value %q", part)
		}
		levels = append(levels, t)
	}
	return levels, nil
}

// reportTransport prints the reliable-transport counters of a faulted
// run: how often the retransmission machinery fired and how many
// duplicate deliveries the dedupe layer absorbed.
func reportTransport(out io.Writer, st cvm.Stats) error {
	fmt.Fprintln(out)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "retransmits\t%d\n", st.Total.Retransmits)
	fmt.Fprintf(tw, "duplicates suppressed\t%d\n", st.Total.DupsSuppressed)
	return tw.Flush()
}

// report prints one run's statistics.
func report(out io.Writer, appName string, nodes, threads int, size string, st cvm.Stats) error {
	fmt.Fprintf(out, "%s on %d nodes x %d threads (%s input): result verified against sequential reference\n\n",
		appName, nodes, threads, size)

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "steady-state wall time\t%v\n", st.Wall)
	fmt.Fprintf(tw, "user time (all nodes)\t%v\n", st.Total.UserTime)
	fmt.Fprintf(tw, "barrier wait\t%v\n", st.Total.BarrierWait)
	fmt.Fprintf(tw, "fault wait\t%v\n", st.Total.FaultWait)
	fmt.Fprintf(tw, "lock wait\t%v\n", st.Total.LockWait)
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "thread switches\t%d\n", st.Total.ThreadSwitches)
	fmt.Fprintf(tw, "remote faults\t%d\n", st.Total.RemoteFaults)
	fmt.Fprintf(tw, "remote locks\t%d\n", st.Total.RemoteLocks)
	fmt.Fprintf(tw, "outstanding faults\t%d\n", st.Total.OutstandingFaults)
	fmt.Fprintf(tw, "outstanding locks\t%d\n", st.Total.OutstandingLocks)
	fmt.Fprintf(tw, "block same page\t%d\n", st.Total.BlockSamePage)
	fmt.Fprintf(tw, "block same lock\t%d\n", st.Total.BlockSameLock)
	fmt.Fprintf(tw, "diffs created\t%d\n", st.Total.DiffsCreated)
	fmt.Fprintf(tw, "diffs used\t%d\n", st.Total.DiffsUsed)
	// The adaptation section appears only when the adaptive protocol or
	// thread migration actually acted; plain runs keep the classic shape.
	if st.Total.ModeChanges > 0 || st.Total.Migrations > 0 {
		fmt.Fprintln(tw)
		fmt.Fprintf(tw, "mode changes\t%d\n", st.Total.ModeChanges)
		fmt.Fprintf(tw, "update pushes\t%d\n", st.Total.UpdatePushes)
		fmt.Fprintf(tw, "update hits\t%d\n", st.Total.UpdateHits)
		fmt.Fprintf(tw, "excl window closes\t%d\n", st.Total.ExclWindowCloses)
		fmt.Fprintf(tw, "full fetches\t%d\n", st.Total.FullFetches)
		fmt.Fprintf(tw, "thread migrations\t%d\n", st.Total.Migrations)
	}
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "messages (barrier/lock/diff)\t%d / %d / %d\n",
		st.Net.Msgs[netsim.ClassBarrier], st.Net.Msgs[netsim.ClassLock],
		st.Net.Msgs[netsim.ClassDiff])
	if up, mg := st.Net.Msgs[netsim.ClassUpdate], st.Net.Msgs[netsim.ClassMigrate]; up > 0 || mg > 0 {
		fmt.Fprintf(tw, "messages (update/migrate)\t%d / %d\n", up, mg)
	}
	fmt.Fprintf(tw, "total messages\t%d\n", st.Net.TotalMsgs())
	fmt.Fprintf(tw, "bandwidth\t%d KB\n", st.Net.TotalBytes()/1024)
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "D-cache misses\t%d\n", st.MemTotal.DCacheMisses)
	fmt.Fprintf(tw, "D-TLB misses\t%d\n", st.MemTotal.DTLBMisses)
	fmt.Fprintf(tw, "I-TLB misses\t%d\n", st.MemTotal.ITLBMisses)
	return tw.Flush()
}
