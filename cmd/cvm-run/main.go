// Command cvm-run executes one application of the paper's suite on a
// simulated CVM cluster and prints its statistics.
//
// Usage:
//
//	cvm-run -app sor -nodes 8 -threads 2 -size small
//	cvm-run -app sor -nodes 8 -threads 1,2,4 -parallel 3
//
// Applications: barnes, fft, ocean, sor, swm750, watersp, waternsq,
// waternsq-noopts, waternsq-localbarrier. Sizes: test, small, paper.
//
// -threads accepts a comma-separated list; the resulting configurations
// are independent simulations and run concurrently across -parallel
// worker goroutines (0 = all CPUs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/harness"
	"cvm/internal/netsim"
	"cvm/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cvm-run:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appName    = flag.String("app", "sor", "application: "+strings.Join(apps.Names(), ", "))
		nodes      = flag.Int("nodes", 8, "number of nodes (processors)")
		threads    = flag.String("threads", "1", "application threads per node (comma-separated list sweeps)")
		size       = flag.String("size", "small", "input scale: test, small, paper")
		parallel   = flag.Int("parallel", 0, "worker goroutines for a threads sweep (0 = all CPUs, 1 = sequential)")
		traceOut   = flag.String("trace", "", "record protocol events and write Chrome trace JSON to this file (single -threads level only)")
		traceLimit = flag.Int("trace-limit", 0, "per-node trace event ring bound (0 = unbounded)")
	)
	flag.Parse()

	sz, err := apps.ParseSize(*size)
	if err != nil {
		return err
	}
	levels, err := parseThreadList(*threads)
	if err != nil {
		return err
	}

	if *traceOut != "" {
		if len(levels) != 1 {
			return fmt.Errorf("-trace needs a single -threads level, got %q", *threads)
		}
		return runTraced(*appName, sz, *nodes, levels[0], *size, *traceOut, *traceLimit)
	}

	// The sweep's cells are independent simulations; fan them out over
	// the harness worker pool and print each report in thread order.
	shapes := harness.GridShapes([]int{*nodes}, levels)
	res, err := harness.RunGridParallel([]string{*appName}, sz, shapes, nil, *parallel)
	if err != nil {
		return err
	}
	for i, t := range levels {
		st, ok := res[harness.Key{App: *appName, Nodes: *nodes, Threads: t}]
		if !ok {
			fmt.Printf("%s does not support %d threads per node; skipped\n", *appName, t)
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		if err := report(*appName, *nodes, t, *size, st); err != nil {
			return err
		}
	}
	return nil
}

// runTraced executes one traced simulation and exports the events.
func runTraced(appName string, sz apps.Size, nodes, threads int, size, out string, limit int) error {
	rec := trace.NewRecorder(nodes, threads, limit)
	cfg := cvm.DefaultConfig(nodes, threads)
	cfg.Tracer = rec
	st, err := apps.RunConfig(appName, sz, cfg)
	if err != nil {
		return err
	}
	if err := report(appName, nodes, threads, size, st); err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote %d trace events to %s (load at ui.perfetto.dev)\n", rec.Len(), out)
	return nil
}

// parseThreadList parses "1,2,4" into thread levels.
func parseThreadList(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		t, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || t < 1 {
			return nil, fmt.Errorf("bad -threads value %q", part)
		}
		levels = append(levels, t)
	}
	return levels, nil
}

// report prints one run's statistics.
func report(appName string, nodes, threads int, size string, st cvm.Stats) error {
	fmt.Printf("%s on %d nodes x %d threads (%s input): result verified against sequential reference\n\n",
		appName, nodes, threads, size)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "steady-state wall time\t%v\n", st.Wall)
	fmt.Fprintf(tw, "user time (all nodes)\t%v\n", st.Total.UserTime)
	fmt.Fprintf(tw, "barrier wait\t%v\n", st.Total.BarrierWait)
	fmt.Fprintf(tw, "fault wait\t%v\n", st.Total.FaultWait)
	fmt.Fprintf(tw, "lock wait\t%v\n", st.Total.LockWait)
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "thread switches\t%d\n", st.Total.ThreadSwitches)
	fmt.Fprintf(tw, "remote faults\t%d\n", st.Total.RemoteFaults)
	fmt.Fprintf(tw, "remote locks\t%d\n", st.Total.RemoteLocks)
	fmt.Fprintf(tw, "outstanding faults\t%d\n", st.Total.OutstandingFaults)
	fmt.Fprintf(tw, "outstanding locks\t%d\n", st.Total.OutstandingLocks)
	fmt.Fprintf(tw, "block same page\t%d\n", st.Total.BlockSamePage)
	fmt.Fprintf(tw, "block same lock\t%d\n", st.Total.BlockSameLock)
	fmt.Fprintf(tw, "diffs created\t%d\n", st.Total.DiffsCreated)
	fmt.Fprintf(tw, "diffs used\t%d\n", st.Total.DiffsUsed)
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "messages (barrier/lock/diff)\t%d / %d / %d\n",
		st.Net.Msgs[netsim.ClassBarrier], st.Net.Msgs[netsim.ClassLock],
		st.Net.Msgs[netsim.ClassDiff])
	fmt.Fprintf(tw, "total messages\t%d\n", st.Net.TotalMsgs())
	fmt.Fprintf(tw, "bandwidth\t%d KB\n", st.Net.TotalBytes()/1024)
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "D-cache misses\t%d\n", st.MemTotal.DCacheMisses)
	fmt.Fprintf(tw, "D-TLB misses\t%d\n", st.MemTotal.DTLBMisses)
	fmt.Fprintf(tw, "I-TLB misses\t%d\n", st.MemTotal.ITLBMisses)
	return tw.Flush()
}
