// Command cvm-run executes one application of the paper's suite on a
// simulated CVM cluster and prints its statistics.
//
// Usage:
//
//	cvm-run -app sor -nodes 8 -threads 2 -size small
//
// Applications: barnes, fft, ocean, sor, swm750, watersp, waternsq,
// waternsq-noopts, waternsq-localbarrier. Sizes: test, small, paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"cvm/internal/apps"
	"cvm/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cvm-run:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appName = flag.String("app", "sor", "application: "+strings.Join(apps.Names(), ", "))
		nodes   = flag.Int("nodes", 8, "number of nodes (processors)")
		threads = flag.Int("threads", 1, "application threads per node")
		size    = flag.String("size", "small", "input scale: test, small, paper")
	)
	flag.Parse()

	sz, err := apps.ParseSize(*size)
	if err != nil {
		return err
	}
	st, err := apps.Run(*appName, sz, *nodes, *threads)
	if err != nil {
		return err
	}

	fmt.Printf("%s on %d nodes x %d threads (%s input): result verified against sequential reference\n\n",
		*appName, *nodes, *threads, *size)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "steady-state wall time\t%v\n", st.Wall)
	fmt.Fprintf(tw, "user time (all nodes)\t%v\n", st.Total.UserTime)
	fmt.Fprintf(tw, "barrier wait\t%v\n", st.Total.BarrierWait)
	fmt.Fprintf(tw, "fault wait\t%v\n", st.Total.FaultWait)
	fmt.Fprintf(tw, "lock wait\t%v\n", st.Total.LockWait)
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "thread switches\t%d\n", st.Total.ThreadSwitches)
	fmt.Fprintf(tw, "remote faults\t%d\n", st.Total.RemoteFaults)
	fmt.Fprintf(tw, "remote locks\t%d\n", st.Total.RemoteLocks)
	fmt.Fprintf(tw, "outstanding faults\t%d\n", st.Total.OutstandingFaults)
	fmt.Fprintf(tw, "outstanding locks\t%d\n", st.Total.OutstandingLocks)
	fmt.Fprintf(tw, "block same page\t%d\n", st.Total.BlockSamePage)
	fmt.Fprintf(tw, "block same lock\t%d\n", st.Total.BlockSameLock)
	fmt.Fprintf(tw, "diffs created\t%d\n", st.Total.DiffsCreated)
	fmt.Fprintf(tw, "diffs used\t%d\n", st.Total.DiffsUsed)
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "messages (barrier/lock/diff)\t%d / %d / %d\n",
		st.Net.Msgs[netsim.ClassBarrier], st.Net.Msgs[netsim.ClassLock],
		st.Net.Msgs[netsim.ClassDiff])
	fmt.Fprintf(tw, "total messages\t%d\n", st.Net.TotalMsgs())
	fmt.Fprintf(tw, "bandwidth\t%d KB\n", st.Net.TotalBytes()/1024)
	fmt.Fprintln(tw)
	fmt.Fprintf(tw, "D-cache misses\t%d\n", st.MemTotal.DCacheMisses)
	fmt.Fprintf(tw, "D-TLB misses\t%d\n", st.MemTotal.DTLBMisses)
	fmt.Fprintf(tw, "I-TLB misses\t%d\n", st.MemTotal.ITLBMisses)
	return tw.Flush()
}
