package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cvm/internal/metrics"
)

// runErr runs the command line and returns its error.
func runErr(args ...string) error {
	var out bytes.Buffer
	return run(args, &out)
}

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"negative trace-limit", []string{"-trace-limit", "-1", "-trace", "x.json"}, "-trace-limit"},
		{"malformed trace-limit", []string{"-trace-limit", "two"}, "invalid value"},
		{"negative metrics-interval", []string{"-metrics-interval", "-5ms", "-report"}, "-metrics-interval"},
		{"malformed metrics-interval", []string{"-metrics-interval", "soon"}, "invalid value"},
		{"zero metrics-top", []string{"-metrics-top", "0", "-report"}, "-metrics-top"},
		{"positional args", []string{"-app", "sor", "extra"}, "unexpected arguments"},
		{"bad threads", []string{"-threads", "0"}, "bad -threads"},
		{"bad threads list", []string{"-threads", "1,x"}, "bad -threads"},
		{"unknown app", []string{"-app", "nosuch", "-size", "test"}, "nosuch"},
		{"sweep with trace", []string{"-threads", "1,2", "-trace", "x.json"}, "single -threads level"},
		{"sweep with report", []string{"-threads", "1,2", "-report"}, "single -threads level"},
		{"sweep with check", []string{"-threads", "1,2", "-check"}, "single -threads level"},
		{"bad fault spec", []string{"-faults", "drop=2"}, "drop"},
		{"unknown fault item", []string{"-faults", "frobnicate=1"}, "frobnicate"},
		{"seed without faults", []string{"-fault-seed", "7"}, "-fault-seed needs -faults"},
		{"unknown transport", []string{"-transport", "carrier-pigeon"}, "-transport must be sim or loopback"},
		{"loopback with check", []string{"-transport", "loopback", "-check"}, "virtual-time invariant checker"},
		{"loopback with metrics interval", []string{"-transport", "loopback", "-metrics-interval", "1ms"}, "virtual-time timeline"},
		{"loopback with faults", []string{"-transport", "loopback", "-faults", "drop=0.01"}, "cannot inject simulated faults"},
		{"loopback with engine workers", []string{"-transport", "loopback", "-engine-workers", "2"}, "-engine-workers tunes the simulator"},
		{"loopback with compress-diffs", []string{"-transport", "loopback", "-compress-diffs"}, "-compress-diffs tunes the simulator"},
		{"loopback with sweep", []string{"-transport", "loopback", "-threads", "1,2"}, "single -threads level"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := runErr(tc.args...)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q, want it to contain %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestMetricsRunEmitsReadableReport runs a small instrumented simulation
// end to end: the JSON report parses, carries every node, and the text
// report prints the profile sections.
func TestMetricsRunEmitsReadableReport(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "prof.json")
	csvPath := filepath.Join(dir, "prof.csv")

	var out bytes.Buffer
	err := run([]string{"-app", "sor", "-nodes", "2", "-threads", "2", "-size", "test",
		"-report", "-metrics", jsonPath, "-metrics-csv", csvPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{
		"wall-time breakdown", "latency histograms", "hottest pages", "utilization timeline",
	} {
		if !strings.Contains(out.String(), section) {
			t.Errorf("-report output is missing %q section", section)
		}
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := metrics.ReadReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Snapshot.Nodes) != 2 {
		t.Errorf("report has %d nodes, want 2", len(rep.Snapshot.Nodes))
	}
	if rep.Snapshot.Nodes[0].UserBurst.Count == 0 {
		t.Error("report carries no user-burst observations")
	}

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "scope,metric,count,") {
		t.Errorf("CSV header missing: %q", string(csv[:40]))
	}
}

// TestFaultedRunReportsTransport runs a faulted, checked simulation end
// to end: the result still verifies, the report gains the transport
// section with retransmissions observed, and the invariant checker
// comes back clean.
func TestFaultedRunReportsTransport(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "sor", "-nodes", "4", "-threads", "2", "-size", "test",
		"-faults", "drop=0.02,dup=0.01", "-fault-seed", "9", "-check"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"retransmits", "duplicates suppressed", "invariant checker: no violations"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("faulted run output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "retransmits  0\n") {
		t.Errorf("2%% drop run reported zero retransmits:\n%s", out.String())
	}
}

// TestFaultedSweepRuns exercises the sweep path under faults: every
// level reports, each with its transport section.
func TestFaultedSweepRuns(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "sor", "-nodes", "2", "-threads", "1,2", "-size", "test",
		"-faults", "drop=0.01"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "duplicates suppressed"); got != 2 {
		t.Errorf("sweep printed %d transport sections, want 2:\n%s", got, out.String())
	}
}

// TestLoopbackTransportRun executes one run on the real in-process
// backend through the command entry point and checks the reduced
// report: wall time plus actual transport traffic, no virtual-time
// sections.
func TestLoopbackTransportRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-app", "sor", "-nodes", "4", "-threads", "2", "-size", "test",
		"-transport", "loopback"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"over loopback: result verified", "wall time", "checksum", "total messages",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("loopback report missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "steady-state wall time") {
		t.Errorf("loopback report leaked the simulator's report:\n%s", out.String())
	}
}

// TestLoopbackInstrumentedRun drives the wall-clock observability path
// end to end: -metrics and -trace on the loopback backend must write a
// report stamped with the real-backend section (so diff-backends can
// tell the two apart) and a non-empty Chrome trace.
func TestLoopbackInstrumentedRun(t *testing.T) {
	dir := t.TempDir()
	metPath := filepath.Join(dir, "real.json")
	tracePath := filepath.Join(dir, "real_trace.json")
	var out bytes.Buffer
	err := run([]string{"-app", "waternsq", "-nodes", "4", "-threads", "2", "-size", "test",
		"-transport", "loopback", "-metrics", metPath, "-trace", tracePath, "-report"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(metPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := metrics.ReadReport(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Real == nil || rep.Real.Backend != "loopback" || rep.Real.Nodes != 4 {
		t.Fatalf("loopback report real section = %+v, want backend loopback on 4 nodes", rep.Real)
	}
	if rep.Snapshot.LockAcquires == 0 || rep.Snapshot.BarrierArrivals == 0 {
		t.Errorf("loopback report has zero sync counters: acquires=%d arrivals=%d",
			rep.Snapshot.LockAcquires, rep.Snapshot.BarrierArrivals)
	}
	tr, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(tr, []byte("traceEvents")) {
		t.Errorf("loopback trace is not a Chrome trace: %.100s", tr)
	}
	if !strings.Contains(out.String(), "real transport (loopback") {
		t.Errorf("-report did not render the real-backend section:\n%s", out.String())
	}
}

// TestMetricsRunDeterministic asserts two identical instrumented runs
// write byte-identical JSON reports.
func TestMetricsRunDeterministic(t *testing.T) {
	dir := t.TempDir()
	emit := func(name string) []byte {
		path := filepath.Join(dir, name)
		var out bytes.Buffer
		if err := run([]string{"-app", "sor", "-nodes", "2", "-threads", "2",
			"-size", "test", "-metrics", path}, &out); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(emit("a.json"), emit("b.json")) {
		t.Fatal("repeated runs wrote different metrics reports")
	}
}
