// Command cvm-bench regenerates the paper's tables and figures on the
// simulated cluster.
//
// Usage:
//
//	cvm-bench -experiment all -size small
//	cvm-bench -experiment fig1
//	cvm-bench -experiment table5 -size paper
//	cvm-bench -experiment fig1 -size test -metrics profile.json -report
//
// Experiments: costs, fig1, table2, table3, fig2, table4, table5, ablation, protocols, adapt, all.
//
// Grid cells are independent simulations and run concurrently; -parallel N
// caps the worker count (default: all CPUs; 1 reproduces the sequential
// baseline). -metrics/-report attach a metrics registry to every cell of
// the Figure 1 / Tables 2-3 / Figure 2 grid and emit the aggregated
// profile (cell snapshots merge in deterministic grid order, so the
// report is byte-identical at any -parallel). The perf experiment
// benchmarks the harness itself and writes a machine-readable baseline:
//
//	cvm-bench -experiment perf -json BENCH_harness.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cvm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvm-bench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all",
			"experiment to regenerate: costs, fig1, table2, table3, fig2, table4, table5, ablation, protocols, adapt, perf, scaleout, all")
		size     = fs.String("size", "small", "input scale: test, small, paper")
		quiet    = fs.Bool("q", false, "suppress progress output")
		nodes16  = fs.Bool("with16", true, "include 16-node runs in table4")
		parallel = fs.Int("parallel", 0, "worker goroutines for independent runs (0 = all CPUs, 1 = sequential)")
		jsonPath = fs.String("json", "BENCH_harness.json", "output path for the perf experiment's JSON baseline")

		scaleNodes = fs.String("scale-nodes", "8,64,256,1024",
			"comma-separated node counts for the scaleout experiment")
		scaleJSON = fs.String("scale-json", "BENCH_scaleout.json",
			"output path for the scaleout experiment's JSON baseline")
		scaleWorkers = fs.Int("scale-workers", 4,
			"conservative-engine workers for the scaleout experiment (0 = sequential engine)")

		metricsOut  = fs.String("metrics", "", "write the aggregated metrics JSON report of the fig1/table2/table3/fig2 grid to this file")
		showReport  = fs.Bool("report", false, "print the aggregated metrics profile of the fig1/table2/table3/fig2 grid")
		metricsBin  = fs.Duration("metrics-interval", 0, "utilization-timeline bin width in virtual time (0 = default 10ms)")
		metricsTopN = fs.Int("metrics-top", 10, "rows kept in the hot-page and hot-lock tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *metricsBin < 0 {
		return fmt.Errorf("-metrics-interval must be >= 0, got %v", *metricsBin)
	}
	if *metricsTopN < 1 {
		return fmt.Errorf("-metrics-top must be >= 1, got %d", *metricsTopN)
	}

	sz, err := apps.ParseSize(*size)
	if err != nil {
		return err
	}
	var progress io.Writer
	if !*quiet {
		progress = os.Stderr
	}

	want := func(name string) bool { return *experiment == name || *experiment == "all" }

	wantMetrics := *metricsOut != "" || *showReport
	gridWanted := want("fig1") || want("table2") || want("table3") || want("fig2")
	if wantMetrics && !gridWanted {
		return fmt.Errorf("-metrics/-report apply to the fig1/table2/table3/fig2 grid; -experiment %s does not run it", *experiment)
	}

	if want("costs") {
		c, err := harness.MeasureCosts()
		if err != nil {
			return err
		}
		harness.WriteCosts(out, c)
		fmt.Fprintln(out)
	}

	// Figure 1, Tables 2-3 and Figure 2 share one grid over 4 and 8
	// nodes at 1-4 threads.
	if gridWanted {
		var res harness.Results
		if wantMetrics {
			var snap *cvm.MetricsSnapshot
			res, snap, err = harness.RunGridMetricsParallel(harness.AppOrder, sz,
				harness.GridShapes([]int{4, 8}, harness.ThreadLevels), progress, *parallel,
				cvm.Time((*metricsBin).Nanoseconds()))
			if err != nil {
				return err
			}
			rep := cvm.NewMetricsReport("grid",
				fmt.Sprintf("experiment=%s size=%s", *experiment, *size), snap, *metricsTopN)
			if err := emitGridMetrics(out, rep, *metricsOut, *showReport); err != nil {
				return err
			}
		} else {
			res, err = harness.RunGridParallel(harness.AppOrder, sz,
				harness.GridShapes([]int{4, 8}, harness.ThreadLevels), progress, *parallel)
			if err != nil {
				return err
			}
		}
		if want("fig1") {
			harness.WriteFigure1(out, res, harness.AppOrder, []int{4, 8}, harness.ThreadLevels)
			fmt.Fprintln(out)
		}
		if want("table2") {
			harness.WriteTable2(out, res, harness.AppOrder, 8, harness.ThreadLevels)
			fmt.Fprintln(out)
		}
		if want("table3") {
			harness.WriteTable3(out, res, harness.AppOrder, 8, harness.ThreadLevels)
			fmt.Fprintln(out)
		}
		if want("fig2") {
			harness.WriteFigure2(out, res, harness.AppOrder, 8, harness.ThreadLevels)
			fmt.Fprintln(out)
		}
	}

	if want("table4") {
		nodeCounts := []int{4, 8}
		if *nodes16 {
			nodeCounts = append(nodeCounts, 16)
		}
		// Barnes is excluded in the paper ("will not run with our
		// default input size on sixteen processors").
		names := []string{"fft", "ocean", "sor", "swm750", "watersp", "waternsq"}
		res, err := harness.RunGridParallel(names, sz,
			harness.GridShapes(nodeCounts, []int{1, 2, 4}), progress, *parallel)
		if err != nil {
			return err
		}
		harness.WriteTable4(out, res, names, nodeCounts, []int{2, 4})
		fmt.Fprintln(out)
	}

	if want("ablation") {
		for _, ab := range []struct {
			title string
			run   func(string, apps.Size) ([]harness.AblationRow, error)
		}{
			{"thread-switch cost sweep (paper limiting factor #5)", harness.AblationSwitchCost},
			{"wire latency sweep (the multi-threading premise)", harness.AblationWireLatency},
		} {
			rows, err := ab.run("waternsq", sz)
			if err != nil {
				return err
			}
			harness.WriteAblation(out, ab.title, rows)
			fmt.Fprintln(out)
		}
		sched, err := harness.AblationScheduler("sor", sz)
		if err != nil {
			return err
		}
		harness.WriteSchedulerAblation(out, sched)
		fmt.Fprintln(out)
	}

	if want("protocols") {
		rows, err := harness.CompareProtocols(harness.AppOrder, sz, 8, 2, progress, *parallel)
		if err != nil {
			return err
		}
		harness.WriteProtocols(out, rows, 8, 2)
		fmt.Fprintln(out)
	}

	if want("adapt") {
		rows, err := harness.CompareAdaptive(harness.AppOrder, sz, 8, 2, progress, *parallel)
		if err != nil {
			return err
		}
		harness.WriteAdaptive(out, rows, 8, 2)
		fmt.Fprintln(out)
	}

	if *experiment == "perf" {
		return runPerf(out, sz, *parallel, *jsonPath, progress)
	}

	// The scaleout study is deliberately not part of "all": its 1024-node
	// points dominate the runtime of everything else combined.
	if *experiment == "scaleout" {
		nodeCounts, err := parseNodeList(*scaleNodes)
		if err != nil {
			return err
		}
		study, err := harness.RunScaleStudy(nodeCounts, 1, sz,
			[]bool{false, true}, *scaleWorkers, progress)
		if err != nil {
			return err
		}
		f, err := os.Create(*scaleJSON)
		if err != nil {
			return err
		}
		if err := harness.WriteScaleBaseline(f, study); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		harness.WriteScaleStudy(out, study)
		fmt.Fprintf(out, "scaleout: baseline written to %s\n", *scaleJSON)
		return nil
	}

	if want("table5") {
		rows, err := harness.Table5(sz, 8, harness.ThreadLevels, progress, *parallel)
		if err != nil {
			return err
		}
		harness.WriteTable5(out, rows)
		fmt.Fprintln(out)
	}

	return nil
}

// parseNodeList parses a comma-separated list of node counts.
func parseNodeList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad -scale-nodes entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scale-nodes is empty")
	}
	return out, nil
}

// emitGridMetrics writes the aggregated grid profile as requested.
func emitGridMetrics(out io.Writer, rep *cvm.MetricsReport, jsonPath string, show bool) error {
	if show {
		if err := rep.WriteText(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics report to %s\n\n", jsonPath)
	}
	return nil
}
