package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/core"
	"cvm/internal/harness"
	"cvm/internal/memsim"
	"cvm/internal/sim"
)

// runPerf benchmarks the harness itself: one grid run sequentially and one
// at the requested parallelism, checked for identical results, plus the
// MakeDiff/Apply and memsim microbenchmarks, emitted as JSON in the
// harness.PerfBaseline schema.
func runPerf(out io.Writer, size apps.Size, workers int, jsonPath string, progress io.Writer) error {
	var b harness.PerfBaseline
	b.GoVersion = runtime.Version()
	b.GOMAXPROCS = runtime.GOMAXPROCS(0)
	b.Size = sizeName(size)
	if workers <= 0 {
		workers = harness.DefaultParallelism()
	}

	// A representative grid: the Figure 1 / Tables 2-3 shape but at 4
	// nodes only, so the perf experiment stays shorter than -experiment all
	// while still averaging over every application.
	names := harness.AppOrder
	shapes := harness.GridShapes([]int{4}, harness.ThreadLevels)

	fmt.Fprintf(out, "perf: grid %d apps x %d shapes, sequential...\n", len(names), len(shapes))
	t0 := time.Now()
	seq, err := harness.RunGridParallel(names, size, shapes, progress, 1)
	if err != nil {
		return err
	}
	seqDur := time.Since(t0)
	b.Phases = append(b.Phases, harness.PerfPhase{Name: "grid-sequential", Workers: 1, Seconds: seqDur.Seconds()})

	fmt.Fprintf(out, "perf: same grid with %d workers...\n", workers)
	t0 = time.Now()
	par, err := harness.RunGridParallel(names, size, shapes, progress, workers)
	if err != nil {
		return err
	}
	parDur := time.Since(t0)
	b.Phases = append(b.Phases, harness.PerfPhase{Name: "grid-parallel", Workers: workers, Seconds: parDur.Seconds()})

	b.Grid.Cells = len(seq)
	b.Grid.Workers = workers
	b.Grid.SeqSeconds = seqDur.Seconds()
	b.Grid.ParSeconds = parDur.Seconds()
	b.Grid.SeqCellsSec = float64(len(seq)) / seqDur.Seconds()
	b.Grid.ParCellsSec = float64(len(par)) / parDur.Seconds()
	b.Grid.Speedup = seqDur.Seconds() / parDur.Seconds()
	b.Grid.Identical = seq.Equal(par)
	if !b.Grid.Identical {
		return fmt.Errorf("cvm-bench: parallel grid results differ from sequential (determinism violation)")
	}

	// Intra-run parallelism: the same small grid on the conservative
	// windowed engine, one worker vs engineWorkers workers. Unlike the
	// grid pool (independent simulations per core), this parallelizes
	// inside each simulation, so it is gated on byte-identical Results.
	const engineWorkers = 4
	engineNames := []string{"sor", "waternsq"}
	engineShapes := harness.GridShapes([]int{4}, []int{4})
	engineMut := func(w int) func(harness.Key, *cvm.Config) {
		return func(_ harness.Key, cfg *cvm.Config) { cfg.EngineWorkers = w }
	}
	fmt.Fprintf(out, "perf: engine grid %d apps, windowed engine 1 worker...\n", len(engineNames))
	t0 = time.Now()
	eseq, err := harness.RunGridConfig(engineNames, size, engineShapes, engineMut(1), progress, 1)
	if err != nil {
		return err
	}
	eseqDur := time.Since(t0)
	b.Phases = append(b.Phases, harness.PerfPhase{Name: "engine-sequential", Workers: 1, Seconds: eseqDur.Seconds()})
	fmt.Fprintf(out, "perf: engine grid with %d engine workers...\n", engineWorkers)
	t0 = time.Now()
	epar, err := harness.RunGridConfig(engineNames, size, engineShapes, engineMut(engineWorkers), progress, 1)
	if err != nil {
		return err
	}
	eparDur := time.Since(t0)
	b.Phases = append(b.Phases, harness.PerfPhase{Name: "engine-parallel", Workers: engineWorkers, Seconds: eparDur.Seconds()})

	b.Engine.Workers = engineWorkers
	b.Engine.Cores = runtime.NumCPU()
	b.Engine.SeqSeconds = eseqDur.Seconds()
	b.Engine.ParSeconds = eparDur.Seconds()
	b.Engine.Speedup = eseqDur.Seconds() / eparDur.Seconds()
	b.Engine.Identical = eseq.Equal(epar)
	if !b.Engine.Identical {
		return fmt.Errorf("cvm-bench: windowed engine results differ between 1 and %d workers (determinism violation)", engineWorkers)
	}

	b.Micro = append(b.Micro,
		micro("MakeDiff/sparse", benchMakeDiff(sparsePage)),
		micro("MakeDiff/dense", benchMakeDiff(densePage)),
		micro("MakeDiff/clean", benchMakeDiff(cleanPage)),
		micro("DiffApply", benchDiffApply()),
		micro("MemsimSweep", benchMemsimSweep()),
		micro("ReadRange/scalar", benchSpanRead(false)),
		micro("ReadRange/span", benchSpanRead(true)),
		micro("WriteRange/scalar", benchSpanWrite(false)),
		micro("WriteRange/span", benchSpanWrite(true)),
		micro("SpanSweep/scalar", benchSpanSweep(false)),
		micro("SpanSweep/span", benchSpanSweep(true)),
		micro("SpanSORRow/scalar", benchSpanSORRow(false)),
		micro("SpanSORRow/span", benchSpanSORRow(true)),
		micro("Engine/EventHeap", benchEngineEventHeap()),
		micro("Engine/SpawnWake", benchEngineSpawnWake()),
		micro("DiffEncode/sparse", benchDiffEncode("sparse")),
		micro("DiffEncode/dense", benchDiffEncode("dense")),
		micro("DiffDecode/sparse", benchDiffDecode("sparse")),
	)

	// Encoded-vs-raw wire sizes on the fixed patterns; cvm-metrics
	// compare enforces absolute ratio caps on these.
	for _, pattern := range core.WirePatterns() {
		twin, cur := core.WirePatternPages(pattern, perfPageSize)
		runs := core.MakeDiff(0, twin, cur)
		raw := 0
		for _, r := range runs {
			raw += 8 + len(r.Data)
		}
		enc := core.EncodedRunsSize(runs)
		b.DiffWire = append(b.DiffWire, harness.DiffWireResult{
			Pattern: pattern, RawBytes: raw, EncodedBytes: enc,
			Ratio: float64(enc) / float64(raw),
		})
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&b); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Fprintf(out, "perf: %d cells: sequential %.2fs (%.2f cells/s), %d workers %.2fs (%.2f cells/s), speedup %.2fx\n",
		b.Grid.Cells, b.Grid.SeqSeconds, b.Grid.SeqCellsSec,
		b.Grid.Workers, b.Grid.ParSeconds, b.Grid.ParCellsSec, b.Grid.Speedup)
	fmt.Fprintf(out, "perf: engine grid: 1 worker %.2fs, %d workers %.2fs, speedup %.2fx on %d cores, identical=%v\n",
		b.Engine.SeqSeconds, b.Engine.Workers, b.Engine.ParSeconds,
		b.Engine.Speedup, b.Engine.Cores, b.Engine.Identical)
	for _, m := range b.Micro {
		fmt.Fprintf(out, "perf: %-18s %10.1f ns/op  %d allocs/op\n", m.Name, m.NsOp, m.AllocsOp)
	}
	for _, dw := range b.DiffWire {
		fmt.Fprintf(out, "perf: diff-wire %-8s raw %5d encoded %5d ratio %.3f\n",
			dw.Pattern, dw.RawBytes, dw.EncodedBytes, dw.Ratio)
	}
	fmt.Fprintf(out, "perf: baseline written to %s\n", jsonPath)
	return nil
}

func micro(name string, r testing.BenchmarkResult) harness.MicroResult {
	return harness.MicroResult{Name: name, NsOp: float64(r.T.Nanoseconds()) / float64(r.N), AllocsOp: r.AllocsPerOp()}
}

func sizeName(s apps.Size) string {
	switch s {
	case apps.SizeTest:
		return "test"
	case apps.SizePaper:
		return "paper"
	default:
		return "small"
	}
}

const perfPageSize = 8 << 10

// sparsePage scatters a few short modified ranges across the page.
func sparsePage() (twin, cur []byte) {
	twin = make([]byte, perfPageSize)
	cur = make([]byte, perfPageSize)
	for i := 0; i < perfPageSize; i += 512 {
		cur[i] = byte(i>>9) + 1
	}
	return twin, cur
}

// densePage modifies nearly every byte.
func densePage() (twin, cur []byte) {
	twin = make([]byte, perfPageSize)
	cur = make([]byte, perfPageSize)
	for i := range cur {
		cur[i] = byte(i) | 1
	}
	return twin, cur
}

// cleanPage has no modifications (the twin-comparison common case at
// barrier-heavy apps: most closed pages changed only a small region).
func cleanPage() (twin, cur []byte) {
	twin = make([]byte, perfPageSize)
	cur = make([]byte, perfPageSize)
	return twin, cur
}

func benchMakeDiff(mk func() (twin, cur []byte)) testing.BenchmarkResult {
	twin, cur := mk()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.MakeDiff(0, twin, cur)
		}
	})
}

func benchDiffApply() testing.BenchmarkResult {
	twin, cur := sparsePage()
	d := &core.Diff{Runs: core.MakeDiff(0, twin, cur)}
	dst := make([]byte, perfPageSize)
	tw := make([]byte, perfPageSize)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Apply(dst, tw)
		}
	})
}

func benchDiffEncode(pattern string) testing.BenchmarkResult {
	twin, cur := core.WirePatternPages(pattern, perfPageSize)
	runs := core.MakeDiff(0, twin, cur)
	var dst []byte
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = core.EncodeRuns(dst[:0], runs)
		}
	})
}

func benchDiffDecode(pattern string) testing.BenchmarkResult {
	twin, cur := core.WirePatternPages(pattern, perfPageSize)
	enc := core.EncodeRuns(nil, core.MakeDiff(0, twin, cur))
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.DecodeRuns(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchMemsimSweep() testing.BenchmarkResult {
	sys := memsim.NewSystem(memsim.SP2Params())
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys.Access(uint64(i%(1<<20)) * 8)
		}
	})
}

// Span-accessor micros: the same simulated sweep in elementwise and
// page-span form, so the baseline records the access-check amortization
// factor the bulk accessors buy (same charges, fewer host instructions).
const (
	spanBenchRows = 64
	spanBenchCols = 1024 // two 4 KiB pages per row
)

func spanBenchMatrix(b *testing.B) (*cvm.Cluster, cvm.F64Matrix) {
	b.Helper()
	cluster, err := cvm.New(cvm.DefaultConfig(1, 1))
	if err != nil {
		b.Fatal(err)
	}
	return cluster, cluster.MustAllocF64Matrix("bench.m", spanBenchRows, spanBenchCols, false)
}

// benchSpanRead is a pure read sweep over the whole matrix.
func benchSpanRead(span bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchMatrix(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				sum := 0.0
				if !span {
					for r := 0; r < spanBenchRows; r++ {
						for j := 0; j < spanBenchCols; j++ {
							sum += m.Get(w, r, j)
						}
					}
					return
				}
				row := make([]float64, spanBenchCols)
				for r := 0; r < spanBenchRows; r++ {
					m.Row(w, r, row)
					for _, v := range row {
						sum += v
					}
				}
				_ = sum
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSpanWrite is a pure write sweep over the whole matrix.
func benchSpanWrite(span bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchMatrix(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				if !span {
					for r := 0; r < spanBenchRows; r++ {
						for j := 0; j < spanBenchCols; j++ {
							m.Set(w, r, j, float64(r+j))
						}
					}
					return
				}
				row := make([]float64, spanBenchCols)
				for r := 0; r < spanBenchRows; r++ {
					for j := range row {
						row[j] = float64(r + j)
					}
					m.SetRow(w, r, row)
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSpanSweep is a read-modify-write sweep over the whole matrix.
func benchSpanSweep(span bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchMatrix(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				if !span {
					for r := 0; r < spanBenchRows; r++ {
						for j := 0; j < spanBenchCols; j++ {
							m.Set(w, r, j, m.Get(w, r, j)+1)
						}
					}
					return
				}
				row := make([]float64, spanBenchCols)
				for r := 0; r < spanBenchRows; r++ {
					m.Row(w, r, row)
					for j := range row {
						row[j]++
					}
					m.SetRow(w, r, row)
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSpanSORRow is the SOR five-point red-black row kernel.
func benchSpanSORRow(span bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cluster, m := spanBenchMatrix(b)
			if _, err := cluster.Run(func(w cvm.Worker) {
				if !span {
					for r := 1; r < spanBenchRows-1; r++ {
						for j := 1 + r%2; j < spanBenchCols-1; j += 2 {
							v := 0.25 * (m.Get(w, r-1, j) + m.Get(w, r+1, j) +
								m.Get(w, r, j-1) + m.Get(w, r, j+1))
							m.Set(w, r, j, v)
						}
					}
					return
				}
				top := make([]float64, spanBenchCols)
				cur := make([]float64, spanBenchCols)
				bot := make([]float64, spanBenchCols)
				m.Row(w, 0, top)
				m.Row(w, 1, cur)
				for r := 1; r < spanBenchRows-1; r++ {
					m.Row(w, r+1, bot)
					for j := 1 + r%2; j < spanBenchCols-1; j += 2 {
						cur[j] = 0.25 * (top[j] + bot[j] + cur[j-1] + cur[j+1])
					}
					m.SetRow(w, r, cur)
					top, cur, bot = cur, bot, top
				}
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchEngineEventHeap measures the engine's event heap through the
// public API: one task pushes a standing population of timed events that
// the run loop pops in time order — the delivery pattern of netsim.
func benchEngineEventHeap() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine()
			p := eng.AddProc(0)
			eng.Spawn(p, "pusher", func(t *sim.Task) {
				nop := func() {}
				x := uint64(1)
				for j := 0; j < 512; j++ {
					x = x*6364136223846793005 + 1442695040888963407
					t.Schedule(t.Now()+sim.Time(x>>44), nop)
				}
			})
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchEngineSpawnWake measures task dispatch and wake: two tasks on one
// proc ping-pong through Block/Wake, the pattern of a thread blocking on
// a remote fault and being woken by the reply handler.
func benchEngineSpawnWake() testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := sim.NewEngine()
			p := eng.AddProc(0)
			const rounds = 256
			var a, z *sim.Task
			// a blocks first; z and a then alternate wake-then-block, so
			// every wake targets a task that is already blocked.
			a = eng.Spawn(p, "a", func(t *sim.Task) {
				for j := 0; j < rounds; j++ {
					t.Block(0)
					eng.WakeAt(z, t.Now())
				}
			})
			z = eng.Spawn(p, "z", func(t *sim.Task) {
				for j := 0; j < rounds; j++ {
					eng.WakeAt(a, t.Now())
					t.Block(0)
				}
			})
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
