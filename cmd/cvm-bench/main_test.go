package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"positional args", []string{"extra"}, "unexpected arguments"},
		{"bad size", []string{"-size", "huge"}, "huge"},
		{"negative metrics-interval", []string{"-metrics-interval", "-1ms", "-report"}, "-metrics-interval"},
		{"malformed metrics-interval", []string{"-metrics-interval", "x"}, "invalid value"},
		{"zero metrics-top", []string{"-metrics-top", "0", "-report"}, "-metrics-top"},
		{"metrics without grid", []string{"-experiment", "table4", "-metrics", "m.json"}, "does not run it"},
		{"report without grid", []string{"-experiment", "perf", "-report"}, "does not run it"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q, want it to contain %q", tc.args, err, tc.want)
			}
		})
	}
}
