// Command cvm-trace runs one application with protocol event tracing
// enabled, exports the trace as Chrome trace-event JSON (loadable in
// Perfetto or chrome://tracing), and optionally prints a latency report
// reproducing the paper's §4.1 calibration numbers from the traced
// events alone.
//
// Usage:
//
//	cvm-trace -app sor -nodes 8 -threads 2 -out trace.json
//	cvm-trace -app waternsq -nodes 8 -threads 4 -report
//	cvm-trace -app fft -nodes 4 -threads 2 -limit 100000 -out fft.json -report
//
// The exported JSON has one process per node; track 0 is protocol
// (handler) context and tracks 1..T are the node's application threads.
// Thread switches are drawn as flow arrows, remote faults and lock
// acquires as spans, messages as flow arrows between nodes.
//
// -faults injects a deterministic fault schedule; the trace then also
// shows injected drops/duplicates (fault-inject category) and the
// transport's retransmissions and duplicate suppressions. -check
// additionally attaches the protocol invariant checker and fails the
// run on any violation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/check"
	"cvm/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cvm-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvm-trace", flag.ContinueOnError)
	var (
		appName = fs.String("app", "sor", "application: "+strings.Join(apps.Names(), ", "))
		nodes   = fs.Int("nodes", 8, "number of nodes (processors)")
		threads = fs.Int("threads", 2, "application threads per node")
		size    = fs.String("size", "test", "input scale: test, small, paper")
		outPath = fs.String("out", "", "write Chrome trace-event JSON to this file")
		report  = fs.Bool("report", false, "print the latency report (p50/p95/p99 per event class)")
		limit   = fs.Int("limit", 0, "per-node event ring bound (0 = unbounded; oldest events drop first)")

		engineWorkers = fs.Int("engine-workers", 0, "conservative parallel engine worker count (0 = sequential engine)")

		faults    = fs.String("faults", "", "deterministic fault spec, e.g. 'drop=0.01,dup=0.001' (injected events appear in the trace)")
		faultSeed = fs.Uint64("fault-seed", 1, "fault-schedule seed (same spec + seed = same schedule, byte for byte)")
		checkRun  = fs.Bool("check", false, "attach the protocol invariant checker; any violation fails the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *limit < 0 {
		return fmt.Errorf("-limit must be >= 0, got %d", *limit)
	}
	if *nodes < 1 || *threads < 1 {
		return fmt.Errorf("-nodes and -threads must be >= 1, got %d and %d", *nodes, *threads)
	}
	if *engineWorkers < 0 {
		return fmt.Errorf("-engine-workers must be >= 0, got %d", *engineWorkers)
	}
	var fp *cvm.FaultPlan
	if *faults != "" {
		var err error
		if fp, err = cvm.ParseFaults(*faults, *faultSeed); err != nil {
			return err
		}
	} else {
		seedSet := false
		fs.Visit(func(f *flag.Flag) { seedSet = seedSet || f.Name == "fault-seed" })
		if seedSet {
			return fmt.Errorf("-fault-seed needs -faults")
		}
	}

	if *outPath == "" && !*report {
		return fmt.Errorf("nothing to do: pass -out trace.json and/or -report")
	}
	sz, err := apps.ParseSize(*size)
	if err != nil {
		return err
	}

	rec := trace.NewRecorder(*nodes, *threads, *limit)
	cfg := cvm.DefaultConfig(*nodes, *threads)
	cfg.Tracer = rec
	cfg.Faults = fp
	cfg.EngineWorkers = *engineWorkers
	var chk *check.Checker
	if *checkRun {
		chk = check.New(*nodes, *threads)
		cfg.Tracer = trace.Tee(rec, chk)
	}
	st, err := apps.RunConfig(*appName, sz, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s on %d nodes x %d threads (%s input): %v steady-state wall time, %d events",
		*appName, *nodes, *threads, *size, st.Wall, rec.Len())
	if d := rec.Dropped(); d > 0 {
		fmt.Fprintf(out, " (%d dropped by -limit %d)", d, *limit)
	}
	fmt.Fprintln(out)
	if fp != nil {
		fmt.Fprintf(out, "transport: %d retransmits, %d duplicates suppressed\n",
			st.Total.Retransmits, st.Total.DupsSuppressed)
	}
	if chk != nil {
		chk.Finish()
		if n := chk.Count(); n != 0 {
			var b strings.Builder
			chk.Report(&b)
			fmt.Fprint(out, b.String())
			return fmt.Errorf("invariant checker found %d violation(s)", n)
		}
		fmt.Fprintln(out, "invariant checker: no violations")
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (load at ui.perfetto.dev or chrome://tracing)\n", *outPath)
	}
	if *report {
		fmt.Fprintln(out)
		if err := trace.AnalyzeRecorder(rec).Write(out); err != nil {
			return err
		}
	}
	return nil
}
