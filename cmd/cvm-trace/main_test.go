package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"negative limit", []string{"-limit", "-1", "-report"}, "-limit"},
		{"malformed limit", []string{"-limit", "many"}, "invalid value"},
		{"zero nodes", []string{"-nodes", "0", "-report"}, "-nodes"},
		{"zero threads", []string{"-threads", "0", "-report"}, "-threads"},
		{"positional args", []string{"-report", "extra"}, "unexpected arguments"},
		{"nothing to do", []string{"-app", "sor"}, "nothing to do"},
		{"bad fault spec", []string{"-report", "-faults", "dup=x"}, "dup"},
		{"seed without faults", []string{"-report", "-fault-seed", "3"}, "-fault-seed needs -faults"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q, want it to contain %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestReportRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-app", "sor", "-nodes", "2", "-threads", "2",
		"-size", "test", "-report"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "steady-state wall time") {
		t.Errorf("report output missing summary line: %q", out.String())
	}
}

// TestFaultedTraceRuns runs a faulted, checked, traced simulation: the
// exported trace carries injected-fault events, the transport summary
// prints, and the checker comes back clean.
func TestFaultedTraceRuns(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-app", "sor", "-nodes", "4", "-threads", "2", "-size", "test",
		"-faults", "drop=0.02,dup=0.01", "-fault-seed", "9", "-check", "-out", outPath}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"transport:", "retransmits", "invariant checker: no violations"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("faulted trace output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("fault-inject")) {
		t.Error("exported trace carries no fault-inject events")
	}
}
