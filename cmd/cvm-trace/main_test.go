package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"negative limit", []string{"-limit", "-1", "-report"}, "-limit"},
		{"malformed limit", []string{"-limit", "many"}, "invalid value"},
		{"zero nodes", []string{"-nodes", "0", "-report"}, "-nodes"},
		{"zero threads", []string{"-threads", "0", "-report"}, "-threads"},
		{"positional args", []string{"-report", "extra"}, "unexpected arguments"},
		{"nothing to do", []string{"-app", "sor"}, "nothing to do"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, &out)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q, want it to contain %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestReportRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-app", "sor", "-nodes", "2", "-threads", "2",
		"-size", "test", "-report"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "steady-state wall time") {
		t.Errorf("report output missing summary line: %q", out.String())
	}
}
