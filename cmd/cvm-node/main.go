// Command cvm-node is one node of a real multi-process CVM cluster: it
// runs the paper's applications over actual TCP connections instead of
// the deterministic simulator, using the internal/rt runtime and the
// internal/cluster control plane.
//
// One process per node. The coordinator (node 0) owns the run
// configuration and listens for members; members join it and take the
// configuration from the wire:
//
//	cvm-node -listen :7000 -nodes 4 -app sor -size test   # node 0
//	cvm-node -join host:7000 -node-id 1 -nodes 4          # nodes 1..3
//	cvm-node -join host:7000 -node-id 2 -nodes 4
//	cvm-node -join host:7000 -node-id 3 -nodes 4
//
// The coordinator prints the run's checksum; with -oracle it also runs
// the deterministic simulator at the same configuration in-process and
// fails unless the checksums match exactly (the applications' quantized
// accumulation makes any correct release-consistent execution
// bit-identical; see DESIGN.md §11).
//
// -data sets the host:port the node's DSM data listener binds (default
// 127.0.0.1:0, single-host clusters); on real multi-host clusters give
// each node an address its peers can reach.
//
// -debug-addr starts a read-only introspection HTTP server on any node:
// /healthz (liveness), /status (epoch, per-thread states, per-peer
// traffic), /metrics (wall-clock metrics report as JSON, or Prometheus
// text with ?format=prom), and /debug/pprof/ for live profiling. See
// DESIGN.md §13 and "Observing a real cluster" in the README.
//
// Every node collects wall-clock protocol metrics; members ship theirs
// to the coordinator in the result message, and the coordinator merges
// them in node order. -report prints the merged profile, -metrics FILE
// writes it as JSON (compare against a simulator report with
// cvm-metrics diff-backends), and -trace FILE records node 0's protocol
// events as Chrome trace JSON — all three coordinator-only.
//
// On SIGINT or SIGTERM the node shuts down gracefully: it severs its
// control and data connections so every peer's pending step fails
// promptly with an attributed error instead of hanging, drains the
// debug server, and exits nonzero. A second signal forces exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/cluster"
	"cvm/internal/debugsrv"
	"cvm/internal/metrics"
	"cvm/internal/rt"
	"cvm/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cvm-node:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvm-node", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "", "coordinate the cluster: control address to listen on (this process is node 0)")
		join    = fs.String("join", "", "join a cluster: the coordinator's control address")
		nodeID  = fs.Int("node-id", 0, "this node's id (members: 1..nodes-1; the coordinator is always 0)")
		nodes   = fs.Int("nodes", 4, "cluster size in nodes (members may omit it to accept the coordinator's)")
		threads = fs.Int("threads", 1, "application threads per node (coordinator only)")
		appName = fs.String("app", "sor", "application (coordinator only): "+strings.Join(apps.Names(), ", "))
		size    = fs.String("size", "test", "input scale (coordinator only): test, small, paper")
		page    = fs.Int("page", 4096, "coherence unit in bytes (coordinator only)")
		seed    = fs.Uint64("seed", 1, "experiment seed distributed to all nodes (coordinator only)")
		data    = fs.String("data", "127.0.0.1:0", "host:port for this node's DSM data listener (must be peer-reachable)")
		timeout = fs.Duration("timeout", 2*time.Minute, "bound on every control step, mesh formation included")
		oracle  = fs.Bool("oracle", false, "coordinator only: also run the deterministic simulator and require an exact checksum match")
		quiet   = fs.Bool("quiet", false, "suppress progress messages")

		debugAddr   = fs.String("debug-addr", "", "serve /healthz, /status, /metrics and /debug/pprof on this host:port")
		debugLinger = fs.Duration("debug-linger", 0, "keep the debug server up this long after the run ends (lets scrapers catch fast runs)")

		metricsOut  = fs.String("metrics", "", "coordinator only: write the merged wall-clock metrics report as JSON to this file")
		showReport  = fs.Bool("report", false, "coordinator only: print the merged human-readable metrics profile")
		metricsTopN = fs.Int("metrics-top", 10, "rows kept in the hot-page and hot-lock tables")
		traceOut    = fs.String("trace", "", "coordinator only: write node 0's protocol events as Chrome trace JSON to this file")
		traceLimit  = fs.Int("trace-limit", 0, "per-node trace event ring bound (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if (*listen == "") == (*join == "") {
		return fmt.Errorf("exactly one of -listen (coordinator) or -join (member) is required")
	}
	if *timeout <= 0 {
		return fmt.Errorf("-timeout must be positive, got %v", *timeout)
	}
	if *timeout > time.Hour {
		return fmt.Errorf("-timeout %v exceeds the 1h bound (a wedged cluster should fail, not linger)", *timeout)
	}
	if *metricsTopN < 1 {
		return fmt.Errorf("-metrics-top must be >= 1, got %d", *metricsTopN)
	}
	if *traceLimit < 0 {
		return fmt.Errorf("-trace-limit must be >= 0, got %d", *traceLimit)
	}
	opts := cluster.Options{DataAddr: *data, Timeout: *timeout, Log: out}
	if *quiet {
		opts.Log = io.Discard
	}

	// Graceful shutdown: the first SIGINT/SIGTERM severs this node's
	// cluster connections (failing every blocked step, local and remote,
	// with an attributed error); a second one forces exit.
	interrupt := make(chan struct{})
	interrupted := make(chan struct{}) // closed after the message printed
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		s := <-sigCh
		fmt.Fprintf(os.Stderr, "cvm-node: caught %v, aborting the run; partial results are discarded\n", s)
		close(interrupted)
		close(interrupt)
		s = <-sigCh
		fmt.Fprintf(os.Stderr, "cvm-node: caught second %v, forcing exit\n", s)
		os.Exit(1)
	}()
	opts.Interrupt = interrupt

	// Live introspection: the debug server comes up before the handshake
	// (so /healthz answers while the node waits for peers) and attaches
	// its status and metrics sources when the run starts.
	var live liveRun
	if *debugAddr != "" {
		srv, err := debugsrv.Start(*debugAddr, debugsrv.Sources{
			Status: live.status,
			Report: live.report,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(opts.Log, "debug server on http://%s (/healthz /status /metrics /debug/pprof)\n", srv.Addr())
		defer func() {
			if *debugLinger > 0 {
				select {
				case <-interrupted: // don't linger on an aborted run
				case <-time.After(*debugLinger):
				}
			}
			srv.Shutdown(2 * time.Second)
		}()
	}
	live.topN = *metricsTopN
	opts.Started = live.started

	var rec *trace.Recorder

	if *join != "" {
		memberOnly := func(name string) bool {
			set := false
			fs.Visit(func(f *flag.Flag) { set = set || f.Name == name })
			return set
		}
		for _, name := range []string{"app", "size", "threads", "page", "seed", "oracle",
			"metrics", "report", "trace", "trace-limit"} {
			if memberOnly(name) {
				return fmt.Errorf("-%s is the coordinator's to set; members take it from the wire", name)
			}
		}
		if *nodeID < 1 {
			return fmt.Errorf("-node-id must be 1..nodes-1 for members, got %d", *nodeID)
		}
		nodesArg := 0
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "nodes" {
				nodesArg = *nodes
			}
		})
		if nodesArg != 0 && *nodeID >= nodesArg {
			return fmt.Errorf("-node-id %d outside a cluster of %d nodes", *nodeID, nodesArg)
		}
		outcome, err := cluster.Join(*join, *nodeID, nodesArg, opts)
		if err != nil {
			return interruptedErr(err, interrupted)
		}
		fmt.Fprintf(out, "node %d: ok, checksum %v\n", *nodeID, outcome.Checksum)
		return nil
	}

	// Coordinator.
	if *nodeID != 0 {
		return fmt.Errorf("the coordinator is always node 0; drop -node-id %d", *nodeID)
	}
	spec := cluster.Spec{
		App: *appName, Size: *size,
		Nodes: *nodes, Threads: *threads, Page: *page, Seed: *seed,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if *traceOut != "" {
		rec = trace.NewRecorder(spec.Nodes, spec.Threads, *traceLimit)
		opts.Tracer = rec
	}
	outcome, err := cluster.Coordinate(*listen, spec, opts)
	if err != nil {
		return interruptedErr(err, interrupted)
	}
	fmt.Fprintf(out, "%s/%s on %d nodes x %d threads over tcp: checksum %v (verified against sequential reference)\n",
		spec.App, spec.Size, spec.Nodes, spec.Threads, outcome.Checksum)
	fmt.Fprintf(out, "node 0 traffic: %d messages, %d KB, %v elapsed\n",
		outcome.Net.TotalMsgs(), outcome.Net.TotalBytes()/1024, outcome.Elapsed.Round(time.Millisecond))

	if *showReport || *metricsOut != "" {
		rep := metrics.NewReport(metrics.Meta{
			App:    spec.App,
			Config: fmt.Sprintf("%dx%d size=%s", spec.Nodes, spec.Threads, spec.Size),
		}, outcome.Metrics, *metricsTopN)
		rep.Real = rt.RealStats("tcp", spec.Nodes, outcome.Elapsed, outcome.Net)
		if *showReport {
			fmt.Fprintln(out)
			if err := rep.WriteText(out); err != nil {
				return err
			}
		}
		if *metricsOut != "" {
			if err := writeFileWith(*metricsOut, rep.WriteJSON); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote merged metrics report to %s\n", *metricsOut)
		}
	}
	if rec != nil {
		if err := writeFileWith(*traceOut, func(w io.Writer) error {
			return trace.WriteChrome(w, rec)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d trace events to %s (load at ui.perfetto.dev)\n", rec.Len(), *traceOut)
	}

	if *oracle {
		sz, err := apps.ParseSize(spec.Size)
		if err != nil {
			return err
		}
		_, simSum, err := apps.RunConfigFull(spec.App, sz,
			cvm.DefaultConfig(spec.Nodes, spec.Threads), 0)
		if err != nil {
			return fmt.Errorf("oracle: %w", err)
		}
		if simSum != outcome.Checksum {
			return fmt.Errorf("%w: tcp cluster %v, simulator %v",
				cluster.ErrChecksum, outcome.Checksum, simSum)
		}
		fmt.Fprintf(out, "oracle: simulator checksum %v matches exactly\n", simSum)
	}
	return nil
}

// interruptedErr makes a signal-induced failure loud and unambiguous.
func interruptedErr(err error, interrupted <-chan struct{}) error {
	select {
	case <-interrupted:
		return fmt.Errorf("run aborted by signal; the cluster's partial results are discarded (underlying: %v)", err)
	default:
		return err
	}
}

// liveRun is the debug server's view of the node: empty until the
// control plane calls started, live afterwards.
type liveRun struct {
	mu    sync.Mutex
	info  *cluster.RunInfo
	start time.Time
	topN  int
}

func (lr *liveRun) started(info cluster.RunInfo) {
	lr.mu.Lock()
	lr.info = &info
	lr.start = time.Now()
	lr.mu.Unlock()
}

func (lr *liveRun) get() (*cluster.RunInfo, time.Time) {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.info, lr.start
}

// status backs /status: handshake state before the run, the node's
// spec, epoch, thread states and per-peer traffic once it is live.
func (lr *liveRun) status() any {
	info, start := lr.get()
	if info == nil {
		return map[string]any{"state": "handshaking"}
	}
	return map[string]any{
		"state":      "running",
		"node":       info.Node,
		"app":        info.Spec.App,
		"size":       info.Spec.Size,
		"nodes":      info.Spec.Nodes,
		"threads":    info.Spec.Threads,
		"elapsed_ns": time.Since(start).Nanoseconds(),
		"status":     info.Cluster.Status(),
	}
}

// report backs /metrics: this process's own wall-clock snapshot (one
// node of the cluster; the coordinator's merged report exists only
// after the run).
func (lr *liveRun) report() *metrics.Report {
	info, start := lr.get()
	if info == nil {
		return nil
	}
	rep := metrics.NewReport(metrics.Meta{
		App:    info.Spec.App,
		Config: fmt.Sprintf("%dx%d size=%s", info.Spec.Nodes, info.Spec.Threads, info.Spec.Size),
	}, info.Metrics.Snapshot(), lr.topN)
	rep.Real = rt.RealStats("tcp", info.Spec.Nodes, time.Since(start), info.Conn.Stats())
	return rep
}

// writeFileWith creates path and streams write into it.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
