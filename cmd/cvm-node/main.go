// Command cvm-node is one node of a real multi-process CVM cluster: it
// runs the paper's applications over actual TCP connections instead of
// the deterministic simulator, using the internal/rt runtime and the
// internal/cluster control plane.
//
// One process per node. The coordinator (node 0) owns the run
// configuration and listens for members; members join it and take the
// configuration from the wire:
//
//	cvm-node -listen :7000 -nodes 4 -app sor -size test   # node 0
//	cvm-node -join host:7000 -node-id 1 -nodes 4          # nodes 1..3
//	cvm-node -join host:7000 -node-id 2 -nodes 4
//	cvm-node -join host:7000 -node-id 3 -nodes 4
//
// The coordinator prints the run's checksum; with -oracle it also runs
// the deterministic simulator at the same configuration in-process and
// fails unless the checksums match exactly (the applications' quantized
// accumulation makes any correct release-consistent execution
// bit-identical; see DESIGN.md §11).
//
// -data sets the host:port the node's DSM data listener binds (default
// 127.0.0.1:0, single-host clusters); on real multi-host clusters give
// each node an address its peers can reach.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cvm"
	"cvm/internal/apps"
	"cvm/internal/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cvm-node:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cvm-node", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "", "coordinate the cluster: control address to listen on (this process is node 0)")
		join    = fs.String("join", "", "join a cluster: the coordinator's control address")
		nodeID  = fs.Int("node-id", 0, "this node's id (members: 1..nodes-1; the coordinator is always 0)")
		nodes   = fs.Int("nodes", 4, "cluster size in nodes (members may omit it to accept the coordinator's)")
		threads = fs.Int("threads", 1, "application threads per node (coordinator only)")
		appName = fs.String("app", "sor", "application (coordinator only): "+strings.Join(apps.Names(), ", "))
		size    = fs.String("size", "test", "input scale (coordinator only): test, small, paper")
		page    = fs.Int("page", 4096, "coherence unit in bytes (coordinator only)")
		seed    = fs.Uint64("seed", 1, "experiment seed distributed to all nodes (coordinator only)")
		data    = fs.String("data", "127.0.0.1:0", "host:port for this node's DSM data listener (must be peer-reachable)")
		timeout = fs.Duration("timeout", 2*time.Minute, "bound on every control step, mesh formation included")
		oracle  = fs.Bool("oracle", false, "coordinator only: also run the deterministic simulator and require an exact checksum match")
		quiet   = fs.Bool("quiet", false, "suppress progress messages")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if (*listen == "") == (*join == "") {
		return fmt.Errorf("exactly one of -listen (coordinator) or -join (member) is required")
	}
	if *timeout <= 0 {
		return fmt.Errorf("-timeout must be positive, got %v", *timeout)
	}
	if *timeout > time.Hour {
		return fmt.Errorf("-timeout %v exceeds the 1h bound (a wedged cluster should fail, not linger)", *timeout)
	}
	opts := cluster.Options{DataAddr: *data, Timeout: *timeout, Log: out}
	if *quiet {
		opts.Log = io.Discard
	}

	if *join != "" {
		memberOnly := func(name string) bool {
			set := false
			fs.Visit(func(f *flag.Flag) { set = set || f.Name == name })
			return set
		}
		for _, name := range []string{"app", "size", "threads", "page", "seed", "oracle"} {
			if memberOnly(name) {
				return fmt.Errorf("-%s is the coordinator's to set; members take it from the wire", name)
			}
		}
		if *nodeID < 1 {
			return fmt.Errorf("-node-id must be 1..nodes-1 for members, got %d", *nodeID)
		}
		nodesArg := 0
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "nodes" {
				nodesArg = *nodes
			}
		})
		if nodesArg != 0 && *nodeID >= nodesArg {
			return fmt.Errorf("-node-id %d outside a cluster of %d nodes", *nodeID, nodesArg)
		}
		outcome, err := cluster.Join(*join, *nodeID, nodesArg, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "node %d: ok, checksum %v\n", *nodeID, outcome.Checksum)
		return nil
	}

	// Coordinator.
	if *nodeID != 0 {
		return fmt.Errorf("the coordinator is always node 0; drop -node-id %d", *nodeID)
	}
	spec := cluster.Spec{
		App: *appName, Size: *size,
		Nodes: *nodes, Threads: *threads, Page: *page, Seed: *seed,
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	outcome, err := cluster.Coordinate(*listen, spec, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s/%s on %d nodes x %d threads over tcp: checksum %v (verified against sequential reference)\n",
		spec.App, spec.Size, spec.Nodes, spec.Threads, outcome.Checksum)
	fmt.Fprintf(out, "node 0 traffic: %d messages, %d KB, %v elapsed\n",
		outcome.Net.TotalMsgs(), outcome.Net.TotalBytes()/1024, outcome.Elapsed.Round(time.Millisecond))

	if *oracle {
		sz, err := apps.ParseSize(spec.Size)
		if err != nil {
			return err
		}
		_, simSum, err := apps.RunConfigFull(spec.App, sz,
			cvm.DefaultConfig(spec.Nodes, spec.Threads), 0)
		if err != nil {
			return fmt.Errorf("oracle: %w", err)
		}
		if simSum != outcome.Checksum {
			return fmt.Errorf("%w: tcp cluster %v, simulator %v",
				cluster.ErrChecksum, outcome.Checksum, simSum)
		}
		fmt.Fprintf(out, "oracle: simulator checksum %v matches exactly\n", simSum)
	}
	return nil
}
