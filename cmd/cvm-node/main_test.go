package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cvm/internal/metrics"
)

// runErr runs the command line and returns its error.
func runErr(args ...string) error {
	var out bytes.Buffer
	return run(args, &out)
}

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"no role", []string{}, "exactly one of -listen"},
		{"both roles", []string{"-listen", ":0", "-join", "x:1"}, "exactly one of -listen"},
		{"zero timeout", []string{"-listen", ":0", "-timeout", "0"}, "-timeout must be positive"},
		{"negative timeout", []string{"-join", "x:1", "-timeout", "-5s"}, "-timeout must be positive"},
		{"huge timeout", []string{"-listen", ":0", "-timeout", "2h"}, "1h bound"},
		{"malformed timeout", []string{"-listen", ":0", "-timeout", "soon"}, "invalid value"},
		{"member node id zero", []string{"-join", "x:1", "-node-id", "0"}, "-node-id must be 1"},
		{"member node id negative", []string{"-join", "x:1", "-node-id", "-2"}, "-node-id must be 1"},
		{"member node id out of range", []string{"-join", "x:1", "-node-id", "4", "-nodes", "4"}, "outside a cluster of 4"},
		{"member sets app", []string{"-join", "x:1", "-node-id", "1", "-app", "sor"}, "coordinator's to set"},
		{"member sets size", []string{"-join", "x:1", "-node-id", "1", "-size", "test"}, "coordinator's to set"},
		{"member sets threads", []string{"-join", "x:1", "-node-id", "1", "-threads", "2"}, "coordinator's to set"},
		{"member sets oracle", []string{"-join", "x:1", "-node-id", "1", "-oracle"}, "coordinator's to set"},
		{"member sets metrics", []string{"-join", "x:1", "-node-id", "1", "-metrics", "m.json"}, "coordinator's to set"},
		{"member sets report", []string{"-join", "x:1", "-node-id", "1", "-report"}, "coordinator's to set"},
		{"member sets trace", []string{"-join", "x:1", "-node-id", "1", "-trace", "t.json"}, "coordinator's to set"},
		{"bad metrics-top", []string{"-listen", ":0", "-metrics-top", "0"}, "-metrics-top must be"},
		{"bad trace-limit", []string{"-listen", ":0", "-trace-limit", "-1"}, "-trace-limit must be"},
		{"coordinator with node id", []string{"-listen", ":0", "-node-id", "2"}, "always node 0"},
		{"zero nodes", []string{"-listen", ":0", "-nodes", "0"}, "0 nodes"},
		{"zero threads", []string{"-listen", ":0", "-threads", "0"}, "threads per node"},
		{"unknown app", []string{"-listen", ":0", "-app", "nosuch"}, "nosuch"},
		{"bad size", []string{"-listen", ":0", "-size", "huge"}, "huge"},
		{"bad page", []string{"-listen", ":0", "-page", "100"}, "page size 100"},
		{"unsupported threads", []string{"-listen", ":0", "-app", "ocean", "-threads", "3"}, "does not support 3 threads"},
		{"positional args", []string{"-listen", ":0", "extra"}, "unexpected arguments"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := runErr(tc.args...)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q, want it to contain %q", tc.args, err, tc.want)
			}
		})
	}
}

// freePort reserves a listening port for the coordinator.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestClusterEndToEnd drives a full 3-node cluster through the command
// entry point — coordinator and members as goroutines standing in for
// processes — with -oracle making the coordinator verify the TCP
// cluster's checksum against the deterministic simulator.
func TestClusterEndToEnd(t *testing.T) {
	const nodes = 3
	addr := freePort(t)
	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, nodes)
	errs := make([]error, nodes)

	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = run([]string{"-listen", addr, "-nodes", fmt.Sprint(nodes),
			"-app", "sor", "-size", "test", "-threads", "2",
			"-timeout", "30s", "-oracle", "-quiet"}, &outs[0])
	}()
	for id := 1; id < nodes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = run([]string{"-join", addr, "-node-id", fmt.Sprint(id),
				"-nodes", fmt.Sprint(nodes), "-timeout", "30s", "-quiet"}, &outs[id])
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v\noutput:\n%s", id, err, outs[id].String())
		}
	}
	if got := outs[0].String(); !strings.Contains(got, "checksum") ||
		!strings.Contains(got, "oracle: simulator checksum") {
		t.Fatalf("coordinator output missing checksum/oracle lines:\n%s", got)
	}
	// Every member must have been told the same global checksum.
	var sum string
	for _, line := range strings.Split(outs[0].String(), "\n") {
		if strings.Contains(line, "verified against sequential reference") {
			f := strings.Fields(line)
			for i, w := range f {
				if w == "checksum" && i+1 < len(f) {
					sum = f[i+1]
				}
			}
		}
	}
	if sum == "" {
		t.Fatalf("no checksum in coordinator output:\n%s", outs[0].String())
	}
	for id := 1; id < nodes; id++ {
		if !strings.Contains(outs[id].String(), sum) {
			t.Errorf("node %d output lacks global checksum %s:\n%s", id, sum, outs[id].String())
		}
	}
}

// TestMemberRejectedOnBadID checks that the coordinator turns a bad
// membership away with a reason and shuts the run down cleanly.
func TestMemberRejectedOnBadID(t *testing.T) {
	addr := freePort(t)
	var wg sync.WaitGroup
	var coordErr, memberErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		var out bytes.Buffer
		coordErr = run([]string{"-listen", addr, "-nodes", "2",
			"-app", "sor", "-size", "test", "-timeout", "15s", "-quiet"}, &out)
	}()
	go func() {
		defer wg.Done()
		var out bytes.Buffer
		// Claims node id 5 in a 2-node cluster; only the coordinator can
		// see that, so the rejection must travel back over the wire.
		memberErr = run([]string{"-join", addr, "-node-id", "5", "-timeout", "15s", "-quiet"}, &out)
	}()
	wg.Wait()
	if coordErr == nil || !strings.Contains(coordErr.Error(), "node id 5") {
		t.Errorf("coordinator error = %v, want node id rejection", coordErr)
	}
	if memberErr == nil || !strings.Contains(memberErr.Error(), "node id 5") {
		t.Errorf("member error = %v, want node id rejection", memberErr)
	}
}

// scrapeUntilLive polls a debug server until /healthz answers ok and
// /metrics serves a report with observations, or the deadline passes.
func scrapeUntilLive(t *testing.T, addr string, deadline time.Time) {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	for time.Now().Before(deadline) {
		ok := func() bool {
			resp, err := client.Get("http://" + addr + "/healthz")
			if err != nil {
				return false
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				return false
			}
			resp, err = client.Get("http://" + addr + "/metrics")
			if err != nil {
				return false
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				return false
			}
			rep, err := metrics.ReadReport(body)
			if err != nil {
				t.Fatalf("%s/metrics served %d bytes that are not a report: %v", addr, len(body), err)
			}
			if rep.Real == nil || rep.Real.Backend != "tcp" {
				t.Fatalf("%s/metrics report has no tcp Real section", addr)
			}
			var events int64
			rep.Snapshot.EachHistogram(func(_, _ string, h *metrics.Histogram) { events += h.Count })
			rep.Snapshot.EachCounter(func(_ string, c *metrics.Counter) { events += int64(*c) })
			return events > 0
		}()
		if ok {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("debug server %s never served a non-trivial report", addr)
}

// TestClusterObservability drives a 2-node cluster with debug servers
// on both nodes and the merged metrics report on the coordinator: both
// /metrics endpoints must serve non-trivial wall-clock reports while
// the processes linger, and the coordinator's written report must
// carry the merged snapshot with a tcp Real section.
func TestClusterObservability(t *testing.T) {
	addr := freePort(t)
	dbg0, dbg1 := freePort(t), freePort(t)
	metricsPath := filepath.Join(t.TempDir(), "cluster.json")
	var wg sync.WaitGroup
	var outs [2]bytes.Buffer
	var errs [2]error
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = run([]string{"-listen", addr, "-nodes", "2",
			"-app", "waternsq", "-size", "test", "-threads", "2",
			"-timeout", "30s", "-quiet", "-debug-addr", dbg0, "-debug-linger", "5s",
			"-metrics", metricsPath, "-report"}, &outs[0])
	}()
	go func() {
		defer wg.Done()
		errs[1] = run([]string{"-join", addr, "-node-id", "1", "-nodes", "2",
			"-timeout", "30s", "-quiet", "-debug-addr", dbg1, "-debug-linger", "5s"}, &outs[1])
	}()

	deadline := time.Now().Add(25 * time.Second)
	scrapeUntilLive(t, dbg0, deadline)
	scrapeUntilLive(t, dbg1, deadline)
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v\noutput:\n%s", id, err, outs[id].String())
		}
	}

	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := metrics.ReadReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Real == nil || rep.Real.Backend != "tcp" || rep.Real.Nodes != 2 {
		t.Errorf("merged report Real section = %+v, want tcp/2 nodes", rep.Real)
	}
	// The merge must carry both nodes' observations: waternsq acquires
	// locks from every node, so both per-node shards must be populated.
	if len(rep.Snapshot.Nodes) != 2 {
		t.Fatalf("merged snapshot has %d nodes, want 2", len(rep.Snapshot.Nodes))
	}
	for i := range rep.Snapshot.Nodes {
		nm := &rep.Snapshot.Nodes[i]
		if nm.Lock2Hop.Count+nm.LockLocalWait.Count == 0 {
			t.Errorf("merged snapshot node %d has no lock observations (member merge lost?)", i)
		}
	}
	if int64(rep.Snapshot.LockAcquires) == 0 || int64(rep.Snapshot.BarrierArrivals) == 0 {
		t.Errorf("merged sync counters empty: acquires=%d arrivals=%d",
			rep.Snapshot.LockAcquires, rep.Snapshot.BarrierArrivals)
	}
	if !strings.Contains(outs[0].String(), "real transport (tcp, 2 nodes, wall time)") {
		t.Errorf("coordinator -report output missing real transport section:\n%s", outs[0].String())
	}
}

// TestSignalAbortsCluster: SIGINT on the coordinator must fail both
// processes promptly with attributed errors instead of hanging until
// the timeout, and the failure must be loud about discarding results.
func TestSignalAbortsCluster(t *testing.T) {
	addr := freePort(t)
	var wg sync.WaitGroup
	var errs [2]error
	wg.Add(2)
	go func() {
		defer wg.Done()
		var out bytes.Buffer
		// Node 2 never arrives: the coordinator blocks in the hello
		// phase and the member blocks awaiting its welcome, until the
		// interrupt severs their connections.
		errs[0] = run([]string{"-listen", addr, "-nodes", "3",
			"-app", "sor", "-size", "test",
			"-timeout", "60s", "-quiet"}, &out)
	}()
	go func() {
		defer wg.Done()
		var out bytes.Buffer
		errs[1] = run([]string{"-join", addr, "-node-id", "1", "-nodes", "3",
			"-timeout", "60s", "-quiet"}, &out)
	}()
	time.Sleep(500 * time.Millisecond)
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("cluster still blocked 20s after SIGINT; interrupt does not sever connections")
	}
	for id, err := range errs {
		if err == nil {
			t.Errorf("node %d succeeded after SIGINT, want aborted error", id)
		} else if !strings.Contains(err.Error(), "aborted by signal") {
			t.Errorf("node %d error %q not attributed to the signal", id, err)
		}
	}
}
