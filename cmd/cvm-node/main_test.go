package main

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

// runErr runs the command line and returns its error.
func runErr(args ...string) error {
	var out bytes.Buffer
	return run(args, &out)
}

func TestFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"no role", []string{}, "exactly one of -listen"},
		{"both roles", []string{"-listen", ":0", "-join", "x:1"}, "exactly one of -listen"},
		{"zero timeout", []string{"-listen", ":0", "-timeout", "0"}, "-timeout must be positive"},
		{"negative timeout", []string{"-join", "x:1", "-timeout", "-5s"}, "-timeout must be positive"},
		{"huge timeout", []string{"-listen", ":0", "-timeout", "2h"}, "1h bound"},
		{"malformed timeout", []string{"-listen", ":0", "-timeout", "soon"}, "invalid value"},
		{"member node id zero", []string{"-join", "x:1", "-node-id", "0"}, "-node-id must be 1"},
		{"member node id negative", []string{"-join", "x:1", "-node-id", "-2"}, "-node-id must be 1"},
		{"member node id out of range", []string{"-join", "x:1", "-node-id", "4", "-nodes", "4"}, "outside a cluster of 4"},
		{"member sets app", []string{"-join", "x:1", "-node-id", "1", "-app", "sor"}, "coordinator's to set"},
		{"member sets size", []string{"-join", "x:1", "-node-id", "1", "-size", "test"}, "coordinator's to set"},
		{"member sets threads", []string{"-join", "x:1", "-node-id", "1", "-threads", "2"}, "coordinator's to set"},
		{"member sets oracle", []string{"-join", "x:1", "-node-id", "1", "-oracle"}, "coordinator's to set"},
		{"coordinator with node id", []string{"-listen", ":0", "-node-id", "2"}, "always node 0"},
		{"zero nodes", []string{"-listen", ":0", "-nodes", "0"}, "0 nodes"},
		{"zero threads", []string{"-listen", ":0", "-threads", "0"}, "threads per node"},
		{"unknown app", []string{"-listen", ":0", "-app", "nosuch"}, "nosuch"},
		{"bad size", []string{"-listen", ":0", "-size", "huge"}, "huge"},
		{"bad page", []string{"-listen", ":0", "-page", "100"}, "page size 100"},
		{"unsupported threads", []string{"-listen", ":0", "-app", "ocean", "-threads", "3"}, "does not support 3 threads"},
		{"positional args", []string{"-listen", ":0", "extra"}, "unexpected arguments"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := runErr(tc.args...)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) error %q, want it to contain %q", tc.args, err, tc.want)
			}
		})
	}
}

// freePort reserves a listening port for the coordinator.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestClusterEndToEnd drives a full 3-node cluster through the command
// entry point — coordinator and members as goroutines standing in for
// processes — with -oracle making the coordinator verify the TCP
// cluster's checksum against the deterministic simulator.
func TestClusterEndToEnd(t *testing.T) {
	const nodes = 3
	addr := freePort(t)
	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, nodes)
	errs := make([]error, nodes)

	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[0] = run([]string{"-listen", addr, "-nodes", fmt.Sprint(nodes),
			"-app", "sor", "-size", "test", "-threads", "2",
			"-timeout", "30s", "-oracle", "-quiet"}, &outs[0])
	}()
	for id := 1; id < nodes; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = run([]string{"-join", addr, "-node-id", fmt.Sprint(id),
				"-nodes", fmt.Sprint(nodes), "-timeout", "30s", "-quiet"}, &outs[id])
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v\noutput:\n%s", id, err, outs[id].String())
		}
	}
	if got := outs[0].String(); !strings.Contains(got, "checksum") ||
		!strings.Contains(got, "oracle: simulator checksum") {
		t.Fatalf("coordinator output missing checksum/oracle lines:\n%s", got)
	}
	// Every member must have been told the same global checksum.
	var sum string
	for _, line := range strings.Split(outs[0].String(), "\n") {
		if strings.Contains(line, "verified against sequential reference") {
			f := strings.Fields(line)
			for i, w := range f {
				if w == "checksum" && i+1 < len(f) {
					sum = f[i+1]
				}
			}
		}
	}
	if sum == "" {
		t.Fatalf("no checksum in coordinator output:\n%s", outs[0].String())
	}
	for id := 1; id < nodes; id++ {
		if !strings.Contains(outs[id].String(), sum) {
			t.Errorf("node %d output lacks global checksum %s:\n%s", id, sum, outs[id].String())
		}
	}
}

// TestMemberRejectedOnBadID checks that the coordinator turns a bad
// membership away with a reason and shuts the run down cleanly.
func TestMemberRejectedOnBadID(t *testing.T) {
	addr := freePort(t)
	var wg sync.WaitGroup
	var coordErr, memberErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		var out bytes.Buffer
		coordErr = run([]string{"-listen", addr, "-nodes", "2",
			"-app", "sor", "-size", "test", "-timeout", "15s", "-quiet"}, &out)
	}()
	go func() {
		defer wg.Done()
		var out bytes.Buffer
		// Claims node id 5 in a 2-node cluster; only the coordinator can
		// see that, so the rejection must travel back over the wire.
		memberErr = run([]string{"-join", addr, "-node-id", "5", "-timeout", "15s", "-quiet"}, &out)
	}()
	wg.Wait()
	if coordErr == nil || !strings.Contains(coordErr.Error(), "node id 5") {
		t.Errorf("coordinator error = %v, want node id rejection", coordErr)
	}
	if memberErr == nil || !strings.Contains(memberErr.Error(), "node id 5") {
		t.Errorf("member error = %v, want node id rejection", memberErr)
	}
}
