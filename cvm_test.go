package cvm

import (
	"testing"
)

func TestClusterQuickstart(t *testing.T) {
	cluster, err := New(DefaultConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	data := cluster.MustAllocF64("data", 4096)
	var sum float64
	stats, err := cluster.Run(func(w Worker) {
		chunk := data.Len / w.Threads()
		lo := w.GlobalID() * chunk
		for i := lo; i < lo+chunk; i++ {
			data.Set(w, i, float64(i))
		}
		w.Barrier(0)
		if w.GlobalID() == 0 {
			for i := 0; i < data.Len; i++ {
				sum += data.Get(w, i)
			}
		}
		w.Barrier(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(4095 * 4096 / 2)
	if sum != want {
		t.Errorf("sum = %v, want %v", sum, want)
	}
	if stats.Wall <= 0 {
		t.Errorf("wall = %v, want > 0", stats.Wall)
	}
	if stats.Total.RemoteFaults == 0 {
		t.Error("expected remote faults from the gather phase")
	}
}

func TestF64ArrayAddrs(t *testing.T) {
	a := F64Array{Base: 128, Len: 10}
	if a.At(0) != 128 || a.At(3) != 152 {
		t.Errorf("At = %d,%d want 128,152", a.At(0), a.At(3))
	}
}

func TestI64Array(t *testing.T) {
	cluster, err := New(DefaultConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	arr := cluster.MustAllocI64("ints", 16)
	var got int64
	if _, err := cluster.Run(func(w Worker) {
		if w.GlobalID() == 0 {
			arr.Set(w, 5, -77)
		}
		w.Barrier(0)
		if w.GlobalID() == 1 {
			got = arr.Get(w, 5)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got != -77 {
		t.Errorf("got %d, want -77", got)
	}
}

func TestMatrixPadding(t *testing.T) {
	cluster, err := New(DefaultConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	pageElems := DefaultConfig(1, 1).PageSize / 8
	m := cluster.MustAllocF64Matrix("padded", 4, 10, true)
	if m.Stride != pageElems {
		t.Errorf("padded stride = %d, want %d", m.Stride, pageElems)
	}
	u := cluster.MustAllocF64Matrix("unpadded", 4, 10, false)
	if u.Stride != 10 {
		t.Errorf("unpadded stride = %d, want 10", u.Stride)
	}
	// Rows of the padded matrix land on distinct pages.
	p0 := int64(m.At(0, 0)) / int64(DefaultConfig(1, 1).PageSize)
	p1 := int64(m.At(1, 0)) / int64(DefaultConfig(1, 1).PageSize)
	if p0 == p1 {
		t.Error("padded rows share a page")
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	cluster, err := New(DefaultConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	m := cluster.MustAllocF64Matrix("m", 8, 8, false)
	bad := false
	if _, err := cluster.Run(func(w Worker) {
		for r := w.GlobalID(); r < m.Rows; r += w.Threads() {
			for c := 0; c < m.Cols; c++ {
				m.Set(w, r, c, float64(r*100+c))
			}
		}
		w.Barrier(0)
		for r := 0; r < m.Rows; r++ {
			c := w.GlobalID() % m.Cols
			if m.Get(w, r, c) != float64(r*100+c) {
				bad = true
			}
		}
		w.Barrier(1)
	}); err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("matrix element mismatch after barrier")
	}
}

func TestMustAllocPanicsAfterRun(t *testing.T) {
	cluster, err := New(DefaultConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	cluster.MustAlloc("a", 64)
	if _, err := cluster.Run(func(w Worker) {}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAlloc after Run did not panic")
		}
	}()
	cluster.MustAlloc("b", 64)
}
